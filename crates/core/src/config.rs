//! Accelerator configuration (Table I).

use memsci_xbar::{CellSpec, CostModel};

/// Cluster mix within one bank: `(crossbar size, count)` pairs.
pub type ClusterMix = Vec<(usize, usize)>;

/// Full accelerator configuration.
///
/// The default reproduces Table I: 128 banks, each with two 512×512,
/// four 256×256, six 128×128, and eight 64×64 clusters plus one
/// LEON3-class local processor, clocked at 1.2 GHz in a 15 nm process.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Number of banks.
    pub banks: usize,
    /// Clusters per bank: `(size, count)`, largest first.
    pub clusters_per_bank: ClusterMix,
    /// Memristor cell parameters.
    pub cell: CellSpec,
    /// Crossbar/ADC cost model.
    pub cost: CostModel,
    /// Local-processor timing model.
    pub local: LocalTimings,
    /// Whether clusters protect operands with the AN code.
    pub an_enabled: bool,
    /// Elements of the solution vector owned by each bank (§VI).
    pub vector_section: usize,
    /// Cross-bank barrier latency through global memory, seconds.
    pub barrier_time: f64,
    /// Blocking-efficiency threshold below which the matrix runs on the
    /// companion GPU instead (§VIII-A).
    pub gpu_fallback_efficiency: f64,
    /// Chip-level static power (eDRAM refresh, clock distribution,
    /// global interconnect), watts — charged over kernel time so energy
    /// comparisons against the whole-chip GPU baseline are like for
    /// like.
    pub system_static_power: f64,
    /// Host worker threads for the simulator's parallel sections
    /// (`None` = machine parallelism). The `MEMSCI_THREADS` environment
    /// variable overrides this; results are bit-identical at any
    /// setting. Purely a simulation-host knob — it never affects
    /// modelled accelerator time or energy.
    pub threads: Option<usize>,
    /// Whether the staged SpMV pipeline overlaps the residual-CSR lane
    /// with per-cluster compute on the host (`None` = off). The
    /// `MEMSCI_OVERLAP` environment variable overrides this; results
    /// are bit-identical either way because the ordered merge runs
    /// after both lanes finish. Purely a simulation-host knob.
    pub overlap: Option<bool>,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            banks: 128,
            clusters_per_bank: vec![(512, 2), (256, 4), (128, 6), (64, 8)],
            cell: CellSpec::default(),
            cost: CostModel::default(),
            local: LocalTimings::default(),
            an_enabled: true,
            vector_section: 1200,
            barrier_time: 1.0e-6,
            gpu_fallback_efficiency: 0.10,
            system_static_power: 60.0,
            threads: None,
            overlap: None,
        }
    }
}

impl AcceleratorConfig {
    /// Total clusters of a given size across all banks.
    pub fn cluster_capacity(&self, size: usize) -> usize {
        self.clusters_per_bank
            .iter()
            .find(|&&(s, _)| s == size)
            .map_or(0, |&(_, count)| count * self.banks)
    }

    /// Total clusters of all sizes.
    pub fn total_clusters(&self) -> usize {
        self.clusters_per_bank
            .iter()
            .map(|&(_, c)| c)
            .sum::<usize>()
            * self.banks
    }

    /// Crossbar sizes available, descending.
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters_per_bank.iter().map(|&(s, _)| s).collect()
    }

    /// A scaled-down configuration (for tests): `banks` banks with the
    /// Table I per-bank mix.
    pub fn with_banks(banks: usize) -> Self {
        AcceleratorConfig {
            banks,
            ..Default::default()
        }
    }

    /// Vector-section length actually used for an `n`-element problem:
    /// the configured section, shrunk so every bank participates when
    /// `n` is smaller than `banks × vector_section`.
    pub fn effective_section(&self, n: usize) -> usize {
        self.vector_section
            .min(n.div_ceil(self.banks.max(1)))
            .max(1)
    }
}

/// Timing and power model of the per-bank LEON3-class local processor
/// with an FPGen FMA unit (§VII-A), clocked at the 1.2 GHz system clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalTimings {
    /// Clock frequency, hertz.
    pub f_clk: f64,
    /// Cycles to process one unblocked (CSR residual) non-zero:
    /// column-index load, value load, gather, FMA, bookkeeping.
    pub cycles_per_residual_nnz: f64,
    /// Cycles per element of a local dot product.
    pub cycles_per_dot_elem: f64,
    /// Cycles per element of an AXPY.
    pub cycles_per_axpy_elem: f64,
    /// Time to service one cluster-completion interrupt, seconds.
    pub interrupt_time: f64,
    /// Time for the cross-bank reduction of per-bank dot products
    /// through global memory, seconds.
    pub global_reduce_time: f64,
    /// Effective time per *remote* residual gather — an unblocked
    /// element whose column lies outside the bank's vector section must
    /// fetch `x` through global memory (latency-bound, partially
    /// overlapped), seconds.
    pub remote_gather_time: f64,
    /// Halo width: each bank streams a contiguous window of `x` around
    /// its residual rows into its buffers (standard ghost-cell
    /// practice), so gathers within `|row - col| <= gather_halo` are
    /// local even across section boundaries.
    pub gather_halo: usize,
    /// Average core power while busy, watts.
    pub power: f64,
}

impl Default for LocalTimings {
    fn default() -> Self {
        LocalTimings {
            f_clk: 1.2e9,
            cycles_per_residual_nnz: 6.0,
            cycles_per_dot_elem: 4.0,
            cycles_per_axpy_elem: 5.0,
            interrupt_time: 0.5e-6,
            global_reduce_time: 1.5e-6,
            remote_gather_time: 25.0e-9,
            gather_halo: 2048,
            power: 0.05,
        }
    }
}

impl LocalTimings {
    /// Time to process residual non-zeros on one core: `local` gathers
    /// hit the bank's own vector section, `remote` ones go through
    /// global memory (the reason unblockable matrices are slower on the
    /// accelerator than on the GPU, §VIII-A).
    pub fn residual_time_split(&self, local: usize, remote: usize) -> f64 {
        local as f64 * self.cycles_per_residual_nnz / self.f_clk
            + remote as f64 * (self.cycles_per_residual_nnz / self.f_clk + self.remote_gather_time)
    }

    /// Time to process `nnz` all-local residual non-zeros on one core.
    pub fn residual_time(&self, nnz: usize) -> f64 {
        self.residual_time_split(nnz, 0)
    }

    /// Time for a local dot product over `elems` elements.
    pub fn dot_time(&self, elems: usize) -> f64 {
        elems as f64 * self.cycles_per_dot_elem / self.f_clk
    }

    /// Time for a local AXPY over `elems` elements.
    pub fn axpy_time(&self, elems: usize) -> f64 {
        elems as f64 * self.cycles_per_axpy_elem / self.f_clk
    }

    /// Energy for a busy period on one core.
    pub fn energy(&self, busy_time: f64) -> f64 {
        self.power * busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.banks, 128);
        assert_eq!(
            c.clusters_per_bank,
            vec![(512, 2), (256, 4), (128, 6), (64, 8)]
        );
        assert_eq!(c.total_clusters(), 128 * 20);
        assert_eq!(c.cluster_capacity(512), 256);
        assert_eq!(c.cluster_capacity(64), 1024);
        assert_eq!(c.cluster_capacity(32), 0);
        assert_eq!(c.sizes(), vec![512, 256, 128, 64]);
        assert_eq!(c.cell.r_on, 2.0e3);
    }

    #[test]
    fn local_timings_scale_linearly() {
        let t = LocalTimings::default();
        assert!((t.residual_time(1200) - 1200.0 * 6.0 / 1.2e9).abs() < 1e-18);
        assert!(t.dot_time(100) < t.axpy_time(100));
        assert_eq!(t.energy(2.0), 0.1);
    }

    #[test]
    fn scaled_config() {
        let c = AcceleratorConfig::with_banks(2);
        assert_eq!(c.total_clusters(), 40);
    }
}
