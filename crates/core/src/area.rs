//! System area model (§VIII-C).
//!
//! The paper reports a 539 mm² footprint for the 128-bank Table I
//! system — below the P100's 610 mm² die — with the crossbars and
//! peripheral circuitry (rather than the ADCs, thanks to CIC) as the
//! dominant consumer at 54.1% of cluster area, and the per-bank
//! processors plus global memory at 13.6% of the system.

use crate::config::AcceleratorConfig;

/// Bit-slice crossbars per cluster (127-bit encoded operands).
pub const CROSSBARS_PER_CLUSTER: usize = 127;

/// Per-cluster overhead outside the crossbar/ADC stacks: the shift-and-
/// add reduction tree, the vector and partial-result SRAM buffers, and
/// control, in mm² (calibrated to the paper's totals).
pub const CLUSTER_OVERHEAD_MM2: f64 = 0.016;

/// LEON3-class local processor with FMA, in mm² at 15 nm.
pub const LOCAL_PROCESSOR_MM2: f64 = 0.35;

/// Global eDRAM memory and interconnect, in mm².
pub const GLOBAL_MEMORY_MM2: f64 = 28.5;

/// Area breakdown of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Crossbars + ADCs across all clusters, mm².
    pub crossbars_mm2: f64,
    /// Reduction networks, buffers, and cluster control, mm².
    pub cluster_overhead_mm2: f64,
    /// Per-bank local processors, mm².
    pub processors_mm2: f64,
    /// Global memory, mm².
    pub global_memory_mm2: f64,
}

impl AreaBreakdown {
    /// Total system area, mm².
    pub fn total_mm2(&self) -> f64 {
        self.crossbars_mm2
            + self.cluster_overhead_mm2
            + self.processors_mm2
            + self.global_memory_mm2
    }

    /// Fraction of the system devoted to processors and global memory
    /// (the paper reports 13.6%).
    pub fn processor_memory_fraction(&self) -> f64 {
        (self.processors_mm2 + self.global_memory_mm2) / self.total_mm2()
    }
}

/// Computes the system area for a configuration.
///
/// # Examples
///
/// ```
/// use memsci_core::area::system_area;
/// use memsci_core::AcceleratorConfig;
///
/// let a = system_area(&AcceleratorConfig::default());
/// // §VIII-C: 539 mm², below the P100's 610 mm² die.
/// assert!((a.total_mm2() - 539.0).abs() / 539.0 < 0.03);
/// assert!(a.total_mm2() < 610.0);
/// ```
pub fn system_area(config: &AcceleratorConfig) -> AreaBreakdown {
    let mut crossbars = 0.0;
    let mut clusters = 0usize;
    for &(size, count) in &config.clusters_per_bank {
        let per_cluster = CROSSBARS_PER_CLUSTER as f64 * config.cost.crossbar_area_mm2(size);
        crossbars += per_cluster * count as f64 * config.banks as f64;
        clusters += count * config.banks;
    }
    AreaBreakdown {
        crossbars_mm2: crossbars,
        cluster_overhead_mm2: clusters as f64 * CLUSTER_OVERHEAD_MM2,
        processors_mm2: config.banks as f64 * LOCAL_PROCESSOR_MM2,
        global_memory_mm2: GLOBAL_MEMORY_MM2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_system_is_539_mm2() {
        let a = system_area(&AcceleratorConfig::default());
        let total = a.total_mm2();
        assert!((total - 539.0).abs() / 539.0 < 0.03, "total {total:.1} mm²");
        assert!(total < 610.0, "must undercut the P100 die");
    }

    #[test]
    fn processors_and_memory_are_a_small_fraction() {
        let a = system_area(&AcceleratorConfig::default());
        let f = a.processor_memory_fraction();
        assert!((0.10..0.18).contains(&f), "fraction {f:.3}");
    }

    #[test]
    fn area_scales_with_banks() {
        let a1 = system_area(&AcceleratorConfig::with_banks(64));
        let a2 = system_area(&AcceleratorConfig::with_banks(128));
        assert!(a2.total_mm2() > 1.8 * a1.total_mm2() - GLOBAL_MEMORY_MM2);
        assert!(a2.crossbars_mm2 > a1.crossbars_mm2);
    }
}
