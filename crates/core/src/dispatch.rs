//! Accelerator-vs-GPU dispatch (§VIII-A).
//!
//! Two of the twenty evaluated matrices (ns3Da, thermomech_TC) barely
//! block at all, and running them on the crossbars would be more than an
//! order of magnitude slower than the GPU. Because the blocking
//! preprocessor's cost is bounded (at most four touches per non-zero)
//! and its output reveals the blocking efficiency, the system decides
//! *after* preprocessing where to run, losing under 3% for the fallback
//! matrices.

use memsci_sparse::BlockedMatrix;

use crate::config::AcceleratorConfig;

/// Where a matrix should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Run the solve on the memristive accelerator.
    Accelerator,
    /// Fall back to the companion GPU.
    Gpu,
}

/// Chooses the execution target from a preprocessing outcome.
///
/// # Examples
///
/// ```
/// use memsci_core::dispatch::{choose_target, Target};
/// use memsci_core::AcceleratorConfig;
/// use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
/// use memsci_sparse::generate::poisson2d;
///
/// let blocked = BlockedMatrix::block(&poisson2d(64, 64), &BlockingConfig::default());
/// let target = choose_target(&blocked, &AcceleratorConfig::default());
/// assert!(matches!(target, Target::Accelerator | Target::Gpu));
/// ```
pub fn choose_target(blocked: &BlockedMatrix, config: &AcceleratorConfig) -> Target {
    if blocked.stats.efficiency() < config.gpu_fallback_efficiency {
        Target::Gpu
    } else {
        Target::Accelerator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::blocking::BlockingConfig;
    use memsci_sparse::generate::{banded, uniform_random, ValueModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_bands_go_to_the_accelerator() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = banded(600, 16, 0.9, ValueModel::with_spread(8), &mut rng).to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        assert_eq!(
            choose_target(&blocked, &AcceleratorConfig::default()),
            Target::Accelerator
        );
    }

    #[test]
    fn uniform_scatter_falls_back_to_the_gpu() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = uniform_random(2048, 14000, ValueModel::with_spread(8), &mut rng).to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        assert_eq!(
            choose_target(&blocked, &AcceleratorConfig::default()),
            Target::Gpu
        );
    }

    #[test]
    fn empty_matrix_falls_back_to_the_gpu() {
        // No non-zeros means zero blocking efficiency, which sits below
        // any positive fallback threshold: nothing to accelerate.
        let a = memsci_sparse::Csr::empty(64, 64);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        assert_eq!(blocked.stats.efficiency(), 0.0);
        assert_eq!(
            choose_target(&blocked, &AcceleratorConfig::default()),
            Target::Gpu
        );
    }

    #[test]
    fn all_residual_matrix_falls_back_to_the_gpu() {
        // A bare identity never forms a block (one isolated non-zero
        // per candidate window), so every entry lands on the residual
        // path and the dispatcher must refuse the crossbars.
        let a = memsci_sparse::Csr::identity(512);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        assert_eq!(blocked.stats.nnz_blocked, 0, "identity must not block");
        assert_eq!(
            choose_target(&blocked, &AcceleratorConfig::default()),
            Target::Gpu
        );
    }

    #[test]
    fn threshold_boundary_is_strict() {
        // The comparison is strictly `<`: a matrix exactly at the
        // threshold stays on the accelerator, and any threshold above
        // the measured efficiency forces the GPU.
        let mut rng = StdRng::seed_from_u64(5);
        let a = banded(600, 16, 0.9, ValueModel::with_spread(8), &mut rng).to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let eff = blocked.stats.efficiency();
        assert!(eff > 0.0 && eff <= 1.0);
        let at = AcceleratorConfig {
            gpu_fallback_efficiency: eff,
            ..Default::default()
        };
        assert_eq!(choose_target(&blocked, &at), Target::Accelerator);
        let above = AcceleratorConfig {
            gpu_fallback_efficiency: f64::from_bits(eff.to_bits() + 1),
            ..Default::default()
        };
        assert_eq!(choose_target(&blocked, &above), Target::Gpu);
    }

    #[test]
    fn threshold_is_configurable() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = banded(600, 16, 0.9, ValueModel::with_spread(8), &mut rng).to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let config = AcceleratorConfig {
            gpu_fallback_efficiency: 1.1,
            ..Default::default()
        };
        assert_eq!(choose_target(&blocked, &config), Target::Gpu);
    }
}
