//! The bit-exact accelerator platform.
//!
//! Every blocked MVM runs through real [`memsci_xbar::Cluster`]
//! simulations — alignment, biasing, AN coding, bit slicing, analog
//! column sums with device non-idealities, early termination — making
//! this platform the ground truth for precision (§IV) and the vehicle
//! for the Monte-Carlo device-sensitivity experiments of Figures 12–13.
//! It is orders of magnitude slower than
//! [`crate::engine::AcceleratorPlatform`], so it is meant for small
//! systems.

use memsci_numeric::align::AlignError;
use memsci_solvers::platform::{axpby_f64, dot_f64, Platform};
use memsci_sparse::{BlockedMatrix, Coo, Csr};
use memsci_xbar::cluster::{Cluster, ClusterSpec, MvmOptions, MvmScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::AcceleratorConfig;
use crate::mapping::map_blocks;
use crate::pipeline::{self, PipelineSpec};

/// Salt separating the per-cluster read-noise streams from the build
/// (programming) stream derived from the same user seed.
const RNG_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Options for the exact platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactOptions {
    /// Seed for programming errors and read noise.
    pub seed: u64,
    /// Per-read RTN upset probability (§IV-E).
    pub rtn_probability: f64,
    /// Per-MVM cluster options (early termination, rounding).
    pub mvm: MvmOptions,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            seed: 0,
            rtn_probability: 0.0,
            mvm: MvmOptions::default(),
        }
    }
}

struct ExactCluster {
    row0: usize,
    col0: usize,
    bank: usize,
    cluster: Cluster,
    /// Private read-noise stream (RTN, absent-cell noise), seeded from
    /// the user seed and the cluster's build index so results never
    /// depend on which worker thread simulates the cluster.
    rng: StdRng,
    /// Reusable MVM working memory, warm after the first kernel.
    scratch: MvmScratch,
    /// Reusable per-cluster output block, lent to the cluster lane each
    /// kernel and restored afterwards.
    ybuf: Vec<f64>,
}

impl std::fmt::Debug for ExactCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ExactCluster(row0={}, col0={}, bank={})",
            self.row0, self.col0, self.bank
        )
    }
}

/// One bank's clusters — the sharding unit of the cluster lane,
/// mirroring the hardware's bank-level concurrency.
#[derive(Debug)]
struct ExactBank {
    bank: usize,
    clusters: Vec<ExactCluster>,
    /// Reusable zero-padded vector block for clusters whose column
    /// range is clipped by the matrix edge.
    x_pad: Vec<f64>,
}

/// What one simulated cluster MVM produced, carried from the cluster
/// lane to the ordered merge and the cost accounting.
struct ClusterOutcome {
    bank: usize,
    row0: usize,
    y: Vec<f64>,
    energy: f64,
    time: f64,
    an_corrections: u64,
    an_detections: u64,
}

/// The bit-exact accelerator platform.
#[derive(Debug)]
pub struct ExactAcceleratorPlatform {
    config: AcceleratorConfig,
    opts: ExactOptions,
    n: usize,
    /// Clusters grouped by owning bank (the cluster lane's shards),
    /// bank-major in ascending bank order.
    banks: Vec<ExactBank>,
    residual: Csr,
    /// Explicit transpose of the full operator (blocks + residual,
    /// ideal values), backing [`Platform::spmv_transpose`].
    transpose: Csr,
    diag: Vec<f64>,
    bank_residual_local: Vec<usize>,
    bank_residual_remote: Vec<usize>,
    bank_transpose_local: Vec<usize>,
    bank_transpose_remote: Vec<usize>,
    bank_elems: Vec<usize>,
    /// Residual-lane row sums reused across kernels.
    rbuf: Vec<f64>,
    /// Per-RHS residual-lane row sums reused across batched MVMs.
    batch_rbufs: Vec<Vec<f64>>,
    time: f64,
    energy: f64,
    /// AN-code corrections observed so far.
    pub an_corrections: u64,
    /// AN-code detections (uncorrectable) observed so far.
    pub an_detections: u64,
}

impl ExactAcceleratorPlatform {
    /// Builds the platform, programming every mapped cluster (with
    /// programming errors sampled from the configured cell spec).
    ///
    /// # Errors
    ///
    /// Returns [`AlignError`] if a blocked value is non-finite (the
    /// preprocessor guarantees the exponent ranges fit).
    ///
    /// # Panics
    ///
    /// Panics if the blocked matrix is not square.
    pub fn new(
        blocked: &BlockedMatrix,
        config: AcceleratorConfig,
        opts: ExactOptions,
    ) -> Result<Self, AlignError> {
        let (rows, cols) = blocked.shape();
        assert_eq!(rows, cols, "platform matrices must be square");
        let n = rows;
        let _build_span = memsci_telemetry::span("exact/build");
        let mapping = {
            let _g = memsci_telemetry::span(pipeline::STAGE_DECOMPOSE);
            map_blocks(blocked, &config)
        };
        // Programming consumes the build stream serially (cluster order
        // matters for reproducibility); each programmed cluster then
        // receives its own salted read-noise stream so the MVM lane can
        // shard across workers without sharing a generator.
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut residual_coo = blocked.residual.to_coo();
        for &(r, c, v) in &mapping.extra_residual {
            residual_coo
                .push(r as usize, c as usize, v)
                .expect("in range");
        }
        let _program_span = memsci_telemetry::span(pipeline::STAGE_PROGRAM);
        memsci_telemetry::incr(memsci_telemetry::Counter::OperatorPrograms, 1);
        let mut clusters = Vec::new();
        for load in &mapping.clusters {
            if load.entries.is_empty() {
                continue;
            }
            let spec = ClusterSpec {
                size: load.size as usize,
                cell: config.cell,
                cost: config.cost,
                an_enabled: config.an_enabled,
                rtn_probability: opts.rtn_probability,
                max_magnitude_bits: memsci_numeric::align::MAX_MAGNITUDE_BITS,
            };
            let outcome = Cluster::program(spec, &load.entries, &mut rng)?;
            for &(r, c, v) in &outcome.evicted {
                residual_coo
                    .push(
                        load.row0 as usize + r as usize,
                        load.col0 as usize + c as usize,
                        v,
                    )
                    .expect("in range");
            }
            let stream = memsci_exec::task_seed(opts.seed ^ RNG_STREAM_SALT, clusters.len() as u64);
            clusters.push(ExactCluster {
                row0: load.row0 as usize,
                col0: load.col0 as usize,
                bank: load.bank,
                cluster: outcome.cluster,
                rng: StdRng::seed_from_u64(stream),
                scratch: MvmScratch::default(),
                ybuf: Vec::new(),
            });
        }
        drop(_program_span);
        // Group the cluster inventory by owning bank: the cluster lane
        // shards over banks, and the ordered merge walks this fixed
        // bank-major order regardless of thread count.
        let mut by_bank: std::collections::BTreeMap<usize, Vec<ExactCluster>> =
            std::collections::BTreeMap::new();
        for ec in clusters {
            by_bank.entry(ec.bank).or_default().push(ec);
        }
        let banks: Vec<ExactBank> = by_bank
            .into_iter()
            .map(|(bank, clusters)| ExactBank {
                bank,
                clusters,
                x_pad: Vec::new(),
            })
            .collect();
        let residual = residual_coo.to_csr();
        // Diagonal of the full matrix (blocks + residual), kept for the
        // Platform::diagonal accessor.
        let mut diag = residual.diagonal();
        for b in &blocked.blocks {
            for (r, c, v) in b.global_entries() {
                if r == c {
                    diag[r] += v;
                }
            }
        }
        // Transpose products run on the digital residual path against
        // the ideal (pre-programming) operator: a deployment would
        // program A^T into its own clusters, so the vector section
        // units stand in for them here.
        let mut transpose_coo = Coo::new(n, n);
        for (r, c, v) in residual.iter() {
            transpose_coo.push(c, r, v).expect("in range");
        }
        for b in &blocked.blocks {
            for (r, c, v) in b.global_entries() {
                transpose_coo.push(c, r, v).expect("in range");
            }
        }
        let transpose = transpose_coo.to_csr();
        let section = config.effective_section(n);
        let split_by_bank = |m: &Csr| {
            let mut local_counts = vec![0usize; config.banks];
            let mut remote_counts = vec![0usize; config.banks];
            for (r, c, _) in m.iter() {
                let bank = (r / section) % config.banks;
                let local = r.abs_diff(c) <= config.local.gather_halo
                    || (c / section) % config.banks == bank;
                if local {
                    local_counts[bank] += 1;
                } else {
                    remote_counts[bank] += 1;
                }
            }
            (local_counts, remote_counts)
        };
        let (bank_residual_local, bank_residual_remote) = split_by_bank(&residual);
        let (bank_transpose_local, bank_transpose_remote) = split_by_bank(&transpose);
        let mut bank_elems = vec![0usize; config.banks];
        for r in 0..n {
            bank_elems[(r / section) % config.banks] += 1;
        }
        Ok(ExactAcceleratorPlatform {
            config,
            opts,
            n,
            banks,
            residual,
            transpose,
            diag,
            bank_residual_local,
            bank_residual_remote,
            bank_transpose_local,
            bank_transpose_remote,
            bank_elems,
            rbuf: Vec::new(),
            batch_rbufs: Vec::new(),
            time: 0.0,
            energy: 0.0,
            an_corrections: 0,
            an_detections: 0,
        })
    }

    /// Number of programmed clusters.
    pub fn cluster_count(&self) -> usize {
        self.banks.iter().map(|b| b.clusters.len()).sum()
    }

    /// Non-zeros on the residual path.
    pub fn residual_nnz(&self) -> usize {
        self.residual.nnz()
    }

    /// Drops every reusable buffer (per-cluster MVM scratch and output
    /// blocks, per-bank vector pads, the residual-lane row sums) so the
    /// next kernel starts cold. Results are unaffected — warm and cold
    /// kernels are bit-identical; this only exists so benchmarks can
    /// measure the allocation cost the scratch arenas remove.
    pub fn clear_scratch(&mut self) {
        for bank in &mut self.banks {
            bank.x_pad = Vec::new();
            for ec in &mut bank.clusters {
                ec.scratch = MvmScratch::default();
                ec.ybuf = Vec::new();
            }
        }
        self.rbuf = Vec::new();
        self.batch_rbufs = Vec::new();
    }

    fn dense_kernel(&mut self, per_elem_time: impl Fn(usize) -> f64, extra: f64) {
        let max_elems = self.bank_elems.iter().copied().max().unwrap_or(0);
        let time = per_elem_time(max_elems) + extra;
        let busy: f64 = self
            .bank_elems
            .iter()
            .map(|&e| self.config.local.energy(per_elem_time(e)))
            .sum();
        self.time += time;
        self.energy += busy + self.config.system_static_power * time;
    }
}

impl Platform for ExactAcceleratorPlatform {
    fn n(&self) -> usize {
        self.n
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        let _span = memsci_telemetry::span("exact/spmv");
        memsci_telemetry::incr(memsci_telemetry::Counter::SpmvOps, 1);
        assert_eq!(x.len(), self.n, "x length");
        assert_eq!(y.len(), self.n, "y length");
        y.fill(0.0);
        let spec = PipelineSpec::from_config(&self.config);
        let n = self.n;
        let mvm_opts = self.opts.mvm;
        let mut rbuf = std::mem::take(&mut self.rbuf);
        let banks = &mut self.banks;
        let residual = &self.residual;
        let tasks = banks.len();
        let (bank_results, rbuf, _exec) = pipeline::run_stages(
            &spec,
            "exact/spmv",
            tasks,
            |threads| {
                memsci_exec::parallel_map_mut(threads, banks, |_, shard| {
                    let ExactBank {
                        bank,
                        clusters,
                        x_pad,
                    } = shard;
                    clusters
                        .iter_mut()
                        .map(|ec| {
                            let size = ec.cluster.n();
                            let hi = (ec.col0 + size).min(n);
                            let x_block: &[f64] = if hi - ec.col0 == size {
                                &x[ec.col0..hi]
                            } else {
                                x_pad.clear();
                                x_pad.extend_from_slice(&x[ec.col0..hi]);
                                x_pad.resize(size, 0.0);
                                x_pad
                            };
                            let mut ybuf = std::mem::take(&mut ec.ybuf);
                            ybuf.resize(size, 0.0);
                            let stats = ec
                                .cluster
                                .mvm_with(
                                    x_block,
                                    &mvm_opts,
                                    &mut ec.rng,
                                    &mut ec.scratch,
                                    &mut ybuf,
                                )
                                .expect("vector values are finite");
                            ClusterOutcome {
                                bank: *bank,
                                row0: ec.row0,
                                y: ybuf,
                                energy: stats.energy,
                                time: stats.time,
                                an_corrections: stats.an_corrections,
                                an_detections: stats.an_detections,
                            }
                        })
                        .collect::<Vec<_>>()
                })
            },
            move || {
                rbuf.resize(n, 0.0);
                residual.spmv(x, &mut rbuf);
                memsci_telemetry::incr(
                    memsci_telemetry::Counter::ResidualFlops,
                    2 * residual.nnz() as u64,
                );
                rbuf
            },
            |bank_results, rbuf| {
                // Fixed merge order: banks ascending, clusters in build
                // order within each bank, then the residual row sums.
                for outcome in bank_results.iter().flatten() {
                    for (r, &v) in outcome.y.iter().enumerate() {
                        if v != 0.0 && outcome.row0 + r < n {
                            y[outcome.row0 + r] += v;
                        }
                    }
                }
                for (yr, rv) in y.iter_mut().zip(rbuf) {
                    *yr += rv;
                }
            },
        );
        memsci_telemetry::incr(memsci_telemetry::Counter::BankShardTasks, tasks as u64);
        let mut bank_cluster_time = vec![0.0f64; self.config.banks];
        let mut bank_interrupts = vec![0usize; self.config.banks];
        let mut energy = 0.0f64;
        for outcome in bank_results.iter().flatten() {
            energy += outcome.energy;
            bank_cluster_time[outcome.bank] = bank_cluster_time[outcome.bank].max(outcome.time);
            bank_interrupts[outcome.bank] += 1;
            self.an_corrections += outcome.an_corrections;
            self.an_detections += outcome.an_detections;
        }
        let local = self.config.local;
        let mut worst = 0.0f64;
        for bank in 0..self.config.banks {
            let residual_time = local.residual_time_split(
                self.bank_residual_local[bank],
                self.bank_residual_remote[bank],
            ) + bank_interrupts[bank] as f64 * local.interrupt_time;
            worst = worst.max(bank_cluster_time[bank].max(residual_time));
            energy += local.energy(residual_time);
        }
        let time = worst + self.config.barrier_time;
        self.time += time;
        self.energy += energy + self.config.system_static_power * time;
        // Return the lent buffers to their owners so the next kernel
        // runs warm (outcome order matches cluster order per bank).
        for (shard, outcomes) in self.banks.iter_mut().zip(bank_results) {
            for (ec, outcome) in shard.clusters.iter_mut().zip(outcomes) {
                ec.ybuf = outcome.y;
            }
        }
        self.rbuf = rbuf;
    }

    fn spmv_batch(&mut self, xs: &[&[f64]], ys: &mut [Vec<f64>]) {
        assert_eq!(xs.len(), ys.len(), "batch rhs/output count mismatch");
        if xs.is_empty() {
            return;
        }
        let k = xs.len();
        let _span = memsci_telemetry::span("exact/spmv_batch");
        memsci_telemetry::incr(memsci_telemetry::Counter::SpmvOps, k as u64);
        let n = self.n;
        for x in xs {
            assert_eq!(x.len(), n, "x length");
        }
        for y in ys.iter_mut() {
            y.clear();
            y.resize(n, 0.0);
        }
        let spec = PipelineSpec::from_config(&self.config);
        let mvm_opts = self.opts.mvm;
        let mut rbufs = std::mem::take(&mut self.batch_rbufs);
        rbufs.resize_with(k, Vec::new);
        let banks = &mut self.banks;
        let residual = &self.residual;
        let tasks = banks.len();
        // One shard fan-out streams the whole batch: each bank walks
        // its clusters once and pushes all k vectors through every
        // programmed cluster while its plan and scratch stay hot. Each
        // cluster owns a private read-noise stream, so drawing x₁..xₖ
        // consecutively per cluster reproduces exactly the draws of k
        // solo kernels (which consume the same stream in the same
        // order, one vector at a time).
        let (bank_results, rbufs, _exec) = pipeline::run_batch_stages(
            &spec,
            "exact/spmv_batch",
            tasks,
            k,
            |threads| {
                memsci_exec::parallel_map_mut(threads, banks, |_, shard| {
                    let ExactBank {
                        bank,
                        clusters,
                        x_pad,
                    } = shard;
                    let mut shard_outcomes: Vec<Vec<ClusterOutcome>> =
                        Vec::with_capacity(clusters.len());
                    for ec in clusters.iter_mut() {
                        let size = ec.cluster.n();
                        let hi = (ec.col0 + size).min(n);
                        let mut per_vec = Vec::with_capacity(k);
                        for x in xs {
                            let x_block: &[f64] = if hi - ec.col0 == size {
                                &x[ec.col0..hi]
                            } else {
                                x_pad.clear();
                                x_pad.extend_from_slice(&x[ec.col0..hi]);
                                x_pad.resize(size, 0.0);
                                x_pad
                            };
                            // The warm buffer serves the first vector;
                            // later vectors need their own block since
                            // the merge reads all k of them.
                            let mut ybuf = std::mem::take(&mut ec.ybuf);
                            ybuf.resize(size, 0.0);
                            let stats = ec
                                .cluster
                                .mvm_with(
                                    x_block,
                                    &mvm_opts,
                                    &mut ec.rng,
                                    &mut ec.scratch,
                                    &mut ybuf,
                                )
                                .expect("vector values are finite");
                            per_vec.push(ClusterOutcome {
                                bank: *bank,
                                row0: ec.row0,
                                y: ybuf,
                                energy: stats.energy,
                                time: stats.time,
                                an_corrections: stats.an_corrections,
                                an_detections: stats.an_detections,
                            });
                        }
                        shard_outcomes.push(per_vec);
                    }
                    shard_outcomes
                })
            },
            move || {
                for (x, rbuf) in xs.iter().zip(rbufs.iter_mut()) {
                    rbuf.resize(n, 0.0);
                    residual.spmv(x, rbuf);
                    memsci_telemetry::incr(
                        memsci_telemetry::Counter::ResidualFlops,
                        2 * residual.nnz() as u64,
                    );
                }
                rbufs
            },
            |bank_results, rbufs| {
                // Per vector, the solo merge order: banks ascending,
                // clusters in build order, then the residual row sums.
                for (j, y) in ys.iter_mut().enumerate() {
                    for per_vec in bank_results.iter().flatten() {
                        let outcome = &per_vec[j];
                        for (r, &v) in outcome.y.iter().enumerate() {
                            if v != 0.0 && outcome.row0 + r < n {
                                y[outcome.row0 + r] += v;
                            }
                        }
                    }
                    for (yr, rv) in y.iter_mut().zip(&rbufs[j]) {
                        *yr += rv;
                    }
                }
            },
        );
        memsci_telemetry::incr(memsci_telemetry::Counter::BankShardTasks, tasks as u64);
        // Cost accounting runs per vector in batch order, accumulating
        // modelled time/energy in the same float order as k solo calls.
        for j in 0..k {
            let mut bank_cluster_time = vec![0.0f64; self.config.banks];
            let mut bank_interrupts = vec![0usize; self.config.banks];
            let mut energy = 0.0f64;
            for per_vec in bank_results.iter().flatten() {
                let outcome = &per_vec[j];
                energy += outcome.energy;
                bank_cluster_time[outcome.bank] = bank_cluster_time[outcome.bank].max(outcome.time);
                bank_interrupts[outcome.bank] += 1;
                self.an_corrections += outcome.an_corrections;
                self.an_detections += outcome.an_detections;
            }
            let local = self.config.local;
            let mut worst = 0.0f64;
            for bank in 0..self.config.banks {
                let residual_time = local.residual_time_split(
                    self.bank_residual_local[bank],
                    self.bank_residual_remote[bank],
                ) + bank_interrupts[bank] as f64 * local.interrupt_time;
                worst = worst.max(bank_cluster_time[bank].max(residual_time));
                energy += local.energy(residual_time);
            }
            let time = worst + self.config.barrier_time;
            self.time += time;
            self.energy += energy + self.config.system_static_power * time;
        }
        // Return the lent buffers: the last vector's block warms the
        // next kernel (outcome order matches cluster order per bank).
        for (shard, outcomes) in self.banks.iter_mut().zip(bank_results) {
            for (ec, mut per_vec) in shard.clusters.iter_mut().zip(outcomes) {
                if let Some(outcome) = per_vec.pop() {
                    ec.ybuf = outcome.y;
                }
            }
        }
        self.batch_rbufs = rbufs;
    }

    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]) {
        let _span = memsci_telemetry::span("exact/spmv_transpose");
        memsci_telemetry::incr(memsci_telemetry::Counter::SpmvTransposeOps, 1);
        assert_eq!(x.len(), self.n, "x length");
        assert_eq!(y.len(), self.n, "y length");
        // A deployment would program A^T into its own clusters; here
        // the product runs on the digital residual path against the
        // ideal operator, with every non-zero charged at residual-path
        // rates. BiCG therefore pairs a noisy forward operator with an
        // ideal transpose, which the method tolerates.
        let mut rbuf = std::mem::take(&mut self.rbuf);
        let transpose = &self.transpose;
        let rbuf = pipeline::run_residual_only(
            move || {
                rbuf.resize(transpose.rows(), 0.0);
                transpose.spmv(x, &mut rbuf);
                memsci_telemetry::incr(
                    memsci_telemetry::Counter::ResidualFlops,
                    2 * transpose.nnz() as u64,
                );
                rbuf
            },
            |rbuf| y.copy_from_slice(rbuf),
        );
        self.rbuf = rbuf;
        let local = self.config.local;
        let mut worst = 0.0f64;
        let mut energy = 0.0f64;
        for bank in 0..self.config.banks {
            let time = local.residual_time_split(
                self.bank_transpose_local[bank],
                self.bank_transpose_remote[bank],
            );
            worst = worst.max(time);
            energy += local.energy(time);
        }
        let time = worst + self.config.barrier_time;
        self.time += time;
        self.energy += energy + self.config.system_static_power * time;
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        memsci_telemetry::incr(memsci_telemetry::Counter::DotOps, 1);
        let reduce = self.config.local.global_reduce_time;
        let local = self.config.local;
        self.dense_kernel(|e| local.dot_time(e), reduce);
        dot_f64(x, y)
    }

    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        memsci_telemetry::incr(memsci_telemetry::Counter::AxpbyOps, 1);
        let barrier = self.config.barrier_time;
        let local = self.config.local;
        self.dense_kernel(|e| local.axpy_time(e), barrier);
        axpby_f64(alpha, x, beta, y);
    }

    fn diagonal(&self) -> Vec<f64> {
        self.diag.clone()
    }

    fn elapsed_seconds(&self) -> f64 {
        self.time
    }

    fn energy_joules(&self) -> f64 {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::generate::poisson2d;
    use memsci_sparse::BlockingConfig;

    fn build(n_grid: usize) -> (Csr, ExactAcceleratorPlatform) {
        let a = poisson2d(n_grid, n_grid);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let acc = ExactAcceleratorPlatform::new(
            &blocked,
            AcceleratorConfig::with_banks(2),
            ExactOptions::default(),
        )
        .unwrap();
        (a, acc)
    }

    #[test]
    fn exact_spmv_is_close_to_f64_reference() {
        let (a, mut acc) = build(12);
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin() + 1.5).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        acc.spmv(&x, &mut y1);
        a.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            // Per-block dots are floor-rounded at 53 bits, then summed
            // across blocks in f64: a few ULPs at most.
            assert!((u - v).abs() <= 1e-12 * v.abs().max(1.0), "{u} vs {v}");
        }
        assert!(acc.elapsed_seconds() > 0.0);
        assert!(acc.energy_joules() > 0.0);
    }

    #[test]
    fn exact_spmv_transpose_matches_explicit_transpose() {
        let (a, mut acc) = build(12);
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos() - 0.4).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        let before = acc.elapsed_seconds();
        acc.spmv_transpose(&x, &mut y1);
        a.transpose().spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            // Ideal values on the digital path; only the blocking
            // partition reorders the sums.
            assert!((u - v).abs() <= 1e-12 * v.abs().max(1.0), "{u} vs {v}");
        }
        assert!(
            acc.elapsed_seconds() > before,
            "transpose products must cost time"
        );
    }

    #[test]
    fn bicg_converges_on_the_exact_platform() {
        let (a, mut acc) = build(10);
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = memsci_solvers::SolveOptions::with_tol(1e-8);
        let rep = memsci_solvers::bicg::bicg(&mut acc, &b, &mut x, &opts);
        assert!(
            rep.converged,
            "iters {} res {}",
            rep.iterations, rep.relative_residual
        );
        // The returned solution really solves the system.
        let mut r = vec![0.0; n];
        a.spmv(&x, &mut r);
        let err: f64 = r
            .iter()
            .zip(&b)
            .map(|(ri, bi)| (ri - bi).powi(2))
            .sum::<f64>()
            .sqrt();
        let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / nb < 1e-6, "residual {}", err / nb);
    }

    #[test]
    fn cg_converges_on_the_exact_platform() {
        let (a, mut acc) = build(10);
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = memsci_solvers::SolveOptions::with_tol(1e-8);
        let rep = memsci_solvers::cg::cg(&mut acc, &b, &mut x, &opts);
        assert!(
            rep.converged,
            "iters {} res {}",
            rep.iterations, rep.relative_residual
        );
        // Compare against the reference solve: same tolerance reached.
        let mut reference = memsci_solvers::CsrPlatform::new(a);
        let mut xr = vec![0.0; n];
        let rep_ref = memsci_solvers::cg::cg(&mut reference, &b, &mut xr, &opts);
        assert!(rep_ref.converged);
        // Iteration counts match within a small slack (the platform
        // rounds per-block dots toward −∞ instead of to nearest).
        let diff = rep.iterations.abs_diff(rep_ref.iterations);
        assert!(
            diff <= 2,
            "exact {} vs reference {}",
            rep.iterations,
            rep_ref.iterations
        );
    }

    #[test]
    fn overlap_and_threads_are_bit_identical_exact() {
        // Both the deterministic fast path and the noisy path (which
        // draws from the per-cluster read-noise streams) must produce
        // bitwise-identical results under every host execution mode:
        // merge order is fixed bank-major and every cluster owns its
        // own RNG stream keyed by build index, not worker thread.
        for rtn in [0.0, 0.02] {
            let a = poisson2d(12, 12);
            let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
            let n = a.rows();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos() + 0.8).collect();
            let mut reference: Option<(Vec<u64>, Vec<u64>)> = None;
            for overlap in [false, true] {
                for threads in [1, 2, 4] {
                    let mut config = AcceleratorConfig::with_banks(4);
                    config.threads = Some(threads);
                    config.overlap = Some(overlap);
                    let mut acc = ExactAcceleratorPlatform::new(
                        &blocked,
                        config,
                        ExactOptions {
                            seed: 7,
                            rtn_probability: rtn,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    assert!(acc.banks.len() > 1, "want several bank shards");
                    let mut y = vec![0.0; n];
                    let mut yt = vec![0.0; n];
                    acc.spmv(&x, &mut y);
                    acc.spmv_transpose(&x, &mut yt);
                    let bits = (
                        y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                        yt.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                    );
                    match &reference {
                        None => reference = Some(bits),
                        Some(want) => {
                            assert_eq!(&bits, want, "rtn={rtn} threads={threads} overlap={overlap}")
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn programming_noise_degrades_convergence() {
        let a = poisson2d(10, 10);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let mut config = AcceleratorConfig::with_banks(2);
        config.cell = config
            .cell
            .with_programming_sigma(0.05)
            .with_bits_per_cell(2);
        let mut noisy = ExactAcceleratorPlatform::new(
            &blocked,
            config,
            ExactOptions {
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = memsci_solvers::SolveOptions::with_tol(1e-8).max_iters(4000);
        let rep_noisy = memsci_solvers::cg::cg(&mut noisy, &b, &mut x, &opts);
        let (_, mut clean) = build(10);
        let mut xc = vec![0.0; n];
        let rep_clean = memsci_solvers::cg::cg(&mut clean, &b, &mut xc, &opts);
        assert!(rep_clean.converged);
        // Two-bit cells with 5% programming error hinder convergence
        // (Figure 13): more iterations or outright failure.
        assert!(
            !rep_noisy.converged || rep_noisy.iterations > rep_clean.iterations,
            "noisy {} vs clean {}",
            rep_noisy.iterations,
            rep_clean.iterations
        );
    }
}
