//! The bit-exact accelerator platform.
//!
//! Every blocked MVM runs through real [`memsci_xbar::Cluster`]
//! simulations — alignment, biasing, AN coding, bit slicing, analog
//! column sums with device non-idealities, early termination — making
//! this platform the ground truth for precision (§IV) and the vehicle
//! for the Monte-Carlo device-sensitivity experiments of Figures 12–13.
//! It is orders of magnitude slower than
//! [`crate::engine::AcceleratorPlatform`], so it is meant for small
//! systems.

use std::sync::Arc;

use memsci_numeric::align::AlignError;
use memsci_solvers::platform::{axpby_f64, dot_f64, Platform};
use memsci_sparse::{BlockedMatrix, Coo, Csr};
use memsci_xbar::cluster::{Cluster, ClusterSpec, MvmError, MvmFault, MvmOptions, MvmScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::AcceleratorConfig;
use crate::mapping::{least_worn_bank, map_blocks};
use crate::pipeline::{self, PipelineSpec};

/// Salt separating the per-cluster read-noise streams from the build
/// (programming) stream derived from the same user seed.
const RNG_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Salt separating the repair (reprogram-and-retry) programming streams
/// from the build and read streams derived from the same user seed, so
/// repairs are deterministic regardless of which kernel triggers them.
const REPAIR_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Options for the exact platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactOptions {
    /// Seed for programming errors and read noise.
    pub seed: u64,
    /// Per-read RTN upset probability (§IV-E).
    pub rtn_probability: f64,
    /// Per-MVM cluster options (early termination, rounding).
    pub mvm: MvmOptions,
    /// Bounded reprogram-and-retry budget per cluster. When > 0, an MVM
    /// whose AN check reports an uncorrectable error raises a typed
    /// fault instead of falling back to the nearest codeword; the
    /// platform then reprograms the afflicted cluster onto the
    /// least-worn bank and retries, up to this many times per cluster,
    /// after which the cluster degrades to the exact residual path. 0
    /// (the default) disables the repair lane entirely, preserving the
    /// pre-fault-subsystem behavior bit for bit.
    pub retry_limit: u32,
    /// Retention age of the initial operator programming, feeding the
    /// drift model of the cell's [`memsci_xbar::FaultModel`] (0 = fresh
    /// write, no drift).
    pub write_age: u64,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            seed: 0,
            rtn_probability: 0.0,
            mvm: MvmOptions::default(),
            retry_limit: 0,
            write_age: 0,
        }
    }
}

struct ExactCluster {
    row0: usize,
    col0: usize,
    bank: usize,
    /// The programmed crossbars, shared with the operator (and every
    /// sibling session) until a repair reprograms this cluster — then
    /// the session swaps in its own freshly-programmed copy.
    cluster: Arc<Cluster>,
    /// Private read-noise stream (RTN, absent-cell noise), seeded from
    /// the user seed and the cluster's build index so results never
    /// depend on which worker thread simulates the cluster.
    rng: StdRng,
    /// Reusable MVM working memory, warm after the first kernel.
    scratch: MvmScratch,
    /// Reusable per-cluster output block, lent to the cluster lane each
    /// kernel and restored afterwards.
    ybuf: Vec<f64>,
    /// Position in the build order, keying this cluster's repair
    /// programming streams.
    build_index: u64,
    /// Tile-local entries that programmed cleanly at build (alignment
    /// evictions removed), kept so the repair lane can reprogram the
    /// cluster or degrade it to the residual path. Shared with the
    /// operator; repairs only read it.
    entries: Arc<Vec<(u16, u16, f64)>>,
    /// Remaining reprogram-and-retry budget.
    retries_left: u32,
    /// Endurance writes this cluster has absorbed (initial program
    /// included); feeds the endurance model on reprogram.
    writes: u64,
    /// Degraded: the retry budget ran out and the cluster's entries
    /// moved to the exact residual path. The crossbars no longer run.
    dead: bool,
}

impl std::fmt::Debug for ExactCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ExactCluster(row0={}, col0={}, bank={})",
            self.row0, self.col0, self.bank
        )
    }
}

/// One bank's clusters — the sharding unit of the cluster lane,
/// mirroring the hardware's bank-level concurrency.
#[derive(Debug)]
struct ExactBank {
    bank: usize,
    clusters: Vec<ExactCluster>,
    /// Reusable zero-padded vector block for clusters whose column
    /// range is clipped by the matrix edge.
    x_pad: Vec<f64>,
}

/// What one simulated cluster MVM produced, carried from the cluster
/// lane to the ordered merge and the cost accounting.
struct ClusterOutcome {
    bank: usize,
    row0: usize,
    y: Vec<f64>,
    energy: f64,
    time: f64,
    an_corrections: u64,
    an_detections: u64,
    faults_detected: u64,
    faults_corrected: u64,
    /// Raised fault, if the MVM aborted; `y` is zeroed and the repair
    /// lane takes over after the ordered merge.
    fault: Option<MvmFault>,
}

/// The programmed (immutable) state of one cluster, shared by sessions.
#[derive(Debug)]
struct ClusterProgram {
    row0: usize,
    col0: usize,
    bank: usize,
    build_index: u64,
    cluster: Arc<Cluster>,
    entries: Arc<Vec<(u16, u16, f64)>>,
}

/// One bank's programmed clusters, in build order.
#[derive(Debug)]
struct BankProgram {
    bank: usize,
    clusters: Vec<ClusterProgram>,
}

/// The immutable programmed state of the bit-exact platform: every
/// simulated cluster with its crossbar contents, the residual and
/// transpose operators, cost-model splits and the precomputed diagonal.
/// Programming happens exactly once, here; solve sessions
/// ([`ExactAcceleratorPlatform`]) share one operator behind an [`Arc`]
/// and never write a crossbar again (repairs excepted, which
/// copy-on-write the afflicted cluster into the session).
#[derive(Debug)]
pub struct ExactOperator {
    config: AcceleratorConfig,
    opts: ExactOptions,
    n: usize,
    /// Clusters grouped by owning bank (the cluster lane's shards),
    /// bank-major in ascending bank order.
    banks: Vec<BankProgram>,
    residual: Arc<Csr>,
    /// Explicit transpose of the full operator (blocks + residual,
    /// ideal values), backing [`Platform::spmv_transpose`].
    transpose: Csr,
    /// The operator's main diagonal, assembled once at program time.
    diag: Arc<[f64]>,
    bank_residual_local: Vec<usize>,
    bank_residual_remote: Vec<usize>,
    bank_transpose_local: Vec<usize>,
    bank_transpose_remote: Vec<usize>,
    bank_elems: Vec<usize>,
    /// Endurance writes absorbed per bank by the initial programming.
    bank_wear: Vec<u64>,
    /// High-water mark of per-cluster endurance writes at build.
    wear_max: u64,
}

/// The bit-exact accelerator platform: a solve session over a shared
/// [`ExactOperator`], owning the per-cluster mutable state (read-noise
/// streams, MVM scratch, retry budgets), the session residual operator
/// (which grows when clusters degrade) and the cost accumulators.
#[derive(Debug)]
pub struct ExactAcceleratorPlatform {
    op: Arc<ExactOperator>,
    /// Session clusters grouped by bank, mirroring the operator's
    /// bank-major order.
    banks: Vec<ExactBank>,
    /// Session view of the residual operator: starts as the shared
    /// programmed residual and is copied-on-write when a cluster
    /// degrades onto the residual path.
    residual: Arc<Csr>,
    bank_residual_local: Vec<usize>,
    bank_residual_remote: Vec<usize>,
    /// Residual-lane row sums reused across kernels.
    rbuf: Vec<f64>,
    /// Per-RHS residual-lane row sums reused across batched MVMs.
    batch_rbufs: Vec<Vec<f64>>,
    time: f64,
    energy: f64,
    /// AN-code corrections observed so far.
    pub an_corrections: u64,
    /// AN-code detections (uncorrectable) observed so far.
    pub an_detections: u64,
    /// AN detections attributed to injected device faults.
    pub faults_detected: u64,
    /// AN corrections attributed to injected device faults.
    pub faults_corrected: u64,
    /// Reprogram-and-retry repairs performed so far.
    pub cluster_reprograms: u64,
    /// Clusters whose retry budget ran out (now on the residual path).
    pub retries_exhausted: u64,
    /// Endurance writes absorbed per bank; repairs go to the minimum.
    bank_wear: Vec<u64>,
    /// Published high-water mark of per-cluster endurance writes.
    wear_max: u64,
}

impl ExactOperator {
    /// Programs every mapped cluster (with programming errors sampled
    /// from the configured cell spec) and assembles the shared operator
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError`] if a blocked value is non-finite (the
    /// preprocessor guarantees the exponent ranges fit).
    ///
    /// # Panics
    ///
    /// Panics if the blocked matrix is not square.
    pub fn program(
        blocked: &BlockedMatrix,
        config: AcceleratorConfig,
        opts: ExactOptions,
    ) -> Result<Self, AlignError> {
        let (rows, cols) = blocked.shape();
        assert_eq!(rows, cols, "platform matrices must be square");
        let n = rows;
        let _build_span = memsci_telemetry::span("exact/build");
        let mapping = {
            let _g = memsci_telemetry::span(pipeline::STAGE_DECOMPOSE);
            map_blocks(blocked, &config)
        };
        // Programming consumes the build stream serially (cluster order
        // matters for reproducibility); each programmed cluster then
        // receives its own salted read-noise stream so the MVM lane can
        // shard across workers without sharing a generator.
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut residual_coo = blocked.residual.to_coo();
        for &(r, c, v) in &mapping.extra_residual {
            residual_coo
                .push(r as usize, c as usize, v)
                .expect("in range");
        }
        let _program_span = memsci_telemetry::span(pipeline::STAGE_PROGRAM);
        memsci_telemetry::incr(memsci_telemetry::Counter::OperatorPrograms, 1);
        let mut clusters = Vec::new();
        let mut bank_wear = vec![0u64; config.banks];
        for load in &mapping.clusters {
            if load.entries.is_empty() {
                continue;
            }
            let spec = ClusterSpec {
                size: load.size as usize,
                cell: config.cell,
                cost: config.cost,
                an_enabled: config.an_enabled,
                rtn_probability: opts.rtn_probability,
                max_magnitude_bits: memsci_numeric::align::MAX_MAGNITUDE_BITS,
                write_age: opts.write_age,
                reprograms: 0,
            };
            let outcome = Cluster::program(spec, &load.entries, &mut rng)?;
            for &(r, c, v) in &outcome.evicted {
                residual_coo
                    .push(
                        load.row0 as usize + r as usize,
                        load.col0 as usize + c as usize,
                        v,
                    )
                    .expect("in range");
            }
            // The repair lane reprograms from the entry set that stuck:
            // alignment evictions already live on the residual path.
            let entries: Vec<(u16, u16, f64)> = if outcome.evicted.is_empty() {
                load.entries.clone()
            } else {
                let evicted: std::collections::BTreeSet<(u16, u16)> =
                    outcome.evicted.iter().map(|&(r, c, _)| (r, c)).collect();
                load.entries
                    .iter()
                    .copied()
                    .filter(|&(r, c, _)| !evicted.contains(&(r, c)))
                    .collect()
            };
            bank_wear[load.bank] += 1;
            let build_index = clusters.len() as u64;
            clusters.push(ClusterProgram {
                row0: load.row0 as usize,
                col0: load.col0 as usize,
                bank: load.bank,
                build_index,
                cluster: Arc::new(outcome.cluster),
                entries: Arc::new(entries),
            });
        }
        let wear_max = u64::from(!clusters.is_empty());
        if wear_max > 0 {
            memsci_telemetry::incr(memsci_telemetry::Counter::WearWritesMax, wear_max);
        }
        drop(_program_span);
        // Group the cluster inventory by owning bank: the cluster lane
        // shards over banks, and the ordered merge walks this fixed
        // bank-major order regardless of thread count.
        let mut by_bank: std::collections::BTreeMap<usize, Vec<ClusterProgram>> =
            std::collections::BTreeMap::new();
        for cp in clusters {
            by_bank.entry(cp.bank).or_default().push(cp);
        }
        let banks: Vec<BankProgram> = by_bank
            .into_iter()
            .map(|(bank, clusters)| BankProgram { bank, clusters })
            .collect();
        let residual = residual_coo.to_csr();
        // Diagonal of the full matrix (blocks + residual), kept for the
        // Platform::diagonal accessor.
        let mut diag = residual.diagonal();
        for b in &blocked.blocks {
            for (r, c, v) in b.global_entries() {
                if r == c {
                    diag[r] += v;
                }
            }
        }
        // Transpose products run on the digital residual path against
        // the ideal (pre-programming) operator: a deployment would
        // program A^T into its own clusters, so the vector section
        // units stand in for them here.
        let mut transpose_coo = Coo::new(n, n);
        for (r, c, v) in residual.iter() {
            transpose_coo.push(c, r, v).expect("in range");
        }
        for b in &blocked.blocks {
            for (r, c, v) in b.global_entries() {
                transpose_coo.push(c, r, v).expect("in range");
            }
        }
        let transpose = transpose_coo.to_csr();
        let (bank_residual_local, bank_residual_remote) = split_by_bank(&residual, &config, n);
        let (bank_transpose_local, bank_transpose_remote) = split_by_bank(&transpose, &config, n);
        let section = config.effective_section(n);
        let mut bank_elems = vec![0usize; config.banks];
        for r in 0..n {
            bank_elems[(r / section) % config.banks] += 1;
        }
        Ok(ExactOperator {
            config,
            opts,
            n,
            banks,
            residual: Arc::new(residual),
            transpose,
            diag: diag.into(),
            bank_residual_local,
            bank_residual_remote,
            bank_transpose_local,
            bank_transpose_remote,
            bank_elems,
            bank_wear,
            wear_max,
        })
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The accelerator configuration the operator was programmed under.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The exact-simulation options the operator was programmed under.
    pub fn options(&self) -> &ExactOptions {
        &self.opts
    }

    /// Number of programmed clusters.
    pub fn cluster_count(&self) -> usize {
        self.banks.iter().map(|b| b.clusters.len()).sum()
    }

    /// Non-zeros on the programmed residual path.
    pub fn residual_nnz(&self) -> usize {
        self.residual.nnz()
    }

    /// The operator's main diagonal, precomputed at program time.
    pub fn diagonal(&self) -> Arc<[f64]> {
        Arc::clone(&self.diag)
    }
}

impl ExactAcceleratorPlatform {
    /// Builds the platform, programming every mapped cluster (with
    /// programming errors sampled from the configured cell spec).
    ///
    /// # Errors
    ///
    /// Returns [`AlignError`] if a blocked value is non-finite (the
    /// preprocessor guarantees the exponent ranges fit).
    ///
    /// # Panics
    ///
    /// Panics if the blocked matrix is not square.
    pub fn new(
        blocked: &BlockedMatrix,
        config: AcceleratorConfig,
        opts: ExactOptions,
    ) -> Result<Self, AlignError> {
        Ok(Self::from_operator(Arc::new(ExactOperator::program(
            blocked, config, opts,
        )?)))
    }

    /// Opens a fresh solve session on an already-programmed operator.
    /// No crossbar writes happen here: the session re-derives every
    /// per-cluster read-noise stream from the operator's seed and the
    /// cluster's build index, so a session over a cached operator is
    /// bit-identical to a freshly-built platform.
    pub fn from_operator(op: Arc<ExactOperator>) -> Self {
        let banks = op
            .banks
            .iter()
            .map(|bp| ExactBank {
                bank: bp.bank,
                clusters: bp
                    .clusters
                    .iter()
                    .map(|cp| {
                        let stream =
                            memsci_exec::task_seed(op.opts.seed ^ RNG_STREAM_SALT, cp.build_index);
                        ExactCluster {
                            row0: cp.row0,
                            col0: cp.col0,
                            bank: cp.bank,
                            cluster: Arc::clone(&cp.cluster),
                            rng: StdRng::seed_from_u64(stream),
                            scratch: MvmScratch::default(),
                            ybuf: Vec::new(),
                            build_index: cp.build_index,
                            entries: Arc::clone(&cp.entries),
                            retries_left: op.opts.retry_limit,
                            writes: 1,
                            dead: false,
                        }
                    })
                    .collect(),
                x_pad: Vec::new(),
            })
            .collect();
        ExactAcceleratorPlatform {
            banks,
            residual: Arc::clone(&op.residual),
            bank_residual_local: op.bank_residual_local.clone(),
            bank_residual_remote: op.bank_residual_remote.clone(),
            rbuf: Vec::new(),
            batch_rbufs: Vec::new(),
            time: 0.0,
            energy: 0.0,
            an_corrections: 0,
            an_detections: 0,
            faults_detected: 0,
            faults_corrected: 0,
            cluster_reprograms: 0,
            retries_exhausted: 0,
            bank_wear: op.bank_wear.clone(),
            wear_max: op.wear_max,
            op,
        }
    }

    /// The shared programmed operator behind this session.
    pub fn operator(&self) -> &Arc<ExactOperator> {
        &self.op
    }

    /// Number of programmed clusters.
    pub fn cluster_count(&self) -> usize {
        self.banks.iter().map(|b| b.clusters.len()).sum()
    }

    /// Non-zeros on the residual path (grows as clusters degrade).
    pub fn residual_nnz(&self) -> usize {
        self.residual.nnz()
    }

    /// Endurance writes absorbed per bank (initial programs + repairs).
    pub fn bank_wear(&self) -> &[u64] {
        &self.bank_wear
    }

    /// Stuck-at cells the fault model pinned across all programmed
    /// crossbars (current programming; repairs redraw the masks).
    pub fn stuck_cells(&self) -> u64 {
        self.banks
            .iter()
            .flat_map(|b| &b.clusters)
            .map(|ec| ec.cluster.stuck_cells())
            .sum()
    }

    /// Clusters degraded to the residual path (retry budget exhausted).
    pub fn degraded_clusters(&self) -> usize {
        self.banks
            .iter()
            .flat_map(|b| &b.clusters)
            .filter(|ec| ec.dead)
            .count()
    }

    /// Drops every reusable buffer (per-cluster MVM scratch and output
    /// blocks, per-bank vector pads, the residual-lane row sums) so the
    /// next kernel starts cold. Results are unaffected — warm and cold
    /// kernels are bit-identical; this only exists so benchmarks can
    /// measure the allocation cost the scratch arenas remove.
    pub fn clear_scratch(&mut self) {
        for bank in &mut self.banks {
            bank.x_pad = Vec::new();
            for ec in &mut bank.clusters {
                ec.scratch = MvmScratch::default();
                ec.ybuf = Vec::new();
            }
        }
        self.rbuf = Vec::new();
        self.batch_rbufs = Vec::new();
    }

    fn dense_kernel(&mut self, per_elem_time: impl Fn(usize) -> f64, extra: f64) {
        let op = &self.op;
        let max_elems = op.bank_elems.iter().copied().max().unwrap_or(0);
        let time = per_elem_time(max_elems) + extra;
        let busy: f64 = op
            .bank_elems
            .iter()
            .map(|&e| op.config.local.energy(per_elem_time(e)))
            .sum();
        self.time += time;
        self.energy += busy + self.op.config.system_static_power * time;
    }

    /// Serial repair lane for clusters that raised an [`MvmFault`]
    /// during the parallel MVM fan-out. Per afflicted cluster: bounded
    /// reprogram-and-retry onto the least-worn bank with a fresh
    /// deterministic programming stream, then — once the budget runs
    /// out — graceful degradation to the exact residual path. Runs
    /// after the ordered merge, in build order, so repaired
    /// contributions land deterministically regardless of host threads.
    fn repair_faulted(
        &mut self,
        x: &[f64],
        y: &mut [f64],
        faulted: &[(usize, usize)],
        mvm_opts: &MvmOptions,
    ) {
        let _span = memsci_telemetry::span("exact/repair");
        let op = Arc::clone(&self.op);
        let n = op.n;
        let mut new_residual: Vec<(usize, usize, f64)> = Vec::new();
        for &(si, ci) in faulted {
            loop {
                let shard = &mut self.banks[si];
                let (clusters, x_pad) = (&mut shard.clusters, &mut shard.x_pad);
                let ec = &mut clusters[ci];
                if ec.retries_left == 0 {
                    // Budget exhausted: this cluster's entries move to
                    // the residual path for the rest of the platform's
                    // life; compute this kernel's contribution
                    // digitally right here.
                    ec.dead = true;
                    self.retries_exhausted += 1;
                    memsci_telemetry::trace::instant("exact/degrade");
                    memsci_telemetry::incr(memsci_telemetry::Counter::RetriesExhausted, 1);
                    memsci_telemetry::warn(
                        "fault",
                        &format!(
                            "cluster at ({}, {}) exhausted its retry budget; \
                             degraded to the residual path",
                            ec.row0, ec.col0
                        ),
                    );
                    for &(r, c, v) in ec.entries.iter() {
                        let (gr, gc) = (ec.row0 + r as usize, ec.col0 + c as usize);
                        if gr < n && gc < n {
                            y[gr] += v * x[gc];
                        }
                        new_residual.push((gr, gc, v));
                    }
                    memsci_telemetry::incr(
                        memsci_telemetry::Counter::ResidualFlops,
                        2 * ec.entries.len() as u64,
                    );
                    break;
                }
                ec.retries_left -= 1;
                ec.writes += 1;
                self.cluster_reprograms += 1;
                memsci_telemetry::trace::instant("exact/reprogram");
                memsci_telemetry::incr(memsci_telemetry::Counter::ClusterReprograms, 1);
                if ec.writes > self.wear_max {
                    memsci_telemetry::incr(
                        memsci_telemetry::Counter::WearWritesMax,
                        ec.writes - self.wear_max,
                    );
                    self.wear_max = ec.writes;
                }
                // Wear-aware placement: the replacement physical
                // cluster comes from the least-worn bank.
                let target = least_worn_bank(&self.bank_wear);
                self.bank_wear[target] += 1;
                ec.bank = target;
                // Fresh write: drift resets, endurance accumulates.
                let spec = ClusterSpec {
                    size: ec.cluster.n(),
                    cell: op.config.cell,
                    cost: op.config.cost,
                    an_enabled: op.config.an_enabled,
                    rtn_probability: op.opts.rtn_probability,
                    max_magnitude_bits: memsci_numeric::align::MAX_MAGNITUDE_BITS,
                    write_age: 0,
                    reprograms: ec.writes - 1,
                };
                let stream = memsci_exec::task_seed(
                    op.opts.seed ^ REPAIR_SALT,
                    ec.build_index * 64 + ec.writes,
                );
                let mut prng = StdRng::seed_from_u64(stream);
                match Cluster::program(spec, &ec.entries, &mut prng) {
                    Ok(outcome) => {
                        // Alignment evictions are value-determined, so
                        // an entry set that programmed cleanly at build
                        // programs cleanly again. The repaired crossbars
                        // are private to this session.
                        debug_assert!(outcome.evicted.is_empty());
                        ec.cluster = Arc::new(outcome.cluster);
                    }
                    Err(_) => {
                        // Unreachable for an entry set that programmed
                        // at build; degrade on the next pass.
                        ec.retries_left = 0;
                        continue;
                    }
                }
                let size = ec.cluster.n();
                let hi = (ec.col0 + size).min(n);
                let x_block: &[f64] = if hi - ec.col0 == size {
                    &x[ec.col0..hi]
                } else {
                    x_pad.clear();
                    x_pad.extend_from_slice(&x[ec.col0..hi]);
                    x_pad.resize(size, 0.0);
                    x_pad
                };
                let mut ybuf = std::mem::take(&mut ec.ybuf);
                ybuf.clear();
                ybuf.resize(size, 0.0);
                match ec.cluster.mvm_with(
                    x_block,
                    mvm_opts,
                    &mut ec.rng,
                    &mut ec.scratch,
                    &mut ybuf,
                ) {
                    Ok(stats) => {
                        for (r, &v) in ybuf.iter().enumerate() {
                            if v != 0.0 && ec.row0 + r < n {
                                y[ec.row0 + r] += v;
                            }
                        }
                        ec.ybuf = ybuf;
                        self.an_corrections += stats.an_corrections;
                        self.an_detections += stats.an_detections;
                        self.faults_detected += stats.faults_detected;
                        self.faults_corrected += stats.faults_corrected;
                        // The serial retry extends the kernel's
                        // critical path directly.
                        self.time += stats.time;
                        self.energy += stats.energy;
                        break;
                    }
                    Err(MvmError::Fault(_)) => {
                        ec.ybuf = ybuf;
                        self.an_detections += 1;
                        self.faults_detected += u64::from(ec.cluster.fault_active());
                        continue;
                    }
                    Err(MvmError::Align(e)) => {
                        panic!("vector values are finite: {e}")
                    }
                }
            }
        }
        if !new_residual.is_empty() {
            let mut coo = Coo::new(n, n);
            for (r, c, v) in self.residual.iter() {
                coo.push(r, c, v).expect("in range");
            }
            for &(r, c, v) in &new_residual {
                coo.push(r, c, v).expect("in range");
            }
            // Copy-on-write: the grown residual is private to this
            // session; the shared operator keeps its programmed one.
            self.residual = Arc::new(coo.to_csr());
            let (local, remote) = split_by_bank(&self.residual, &op.config, n);
            self.bank_residual_local = local;
            self.bank_residual_remote = remote;
        }
    }
}

/// Splits a matrix's non-zeros into local and remote counts per bank
/// for the residual-path latency model (§VI-A).
fn split_by_bank(m: &Csr, config: &AcceleratorConfig, n: usize) -> (Vec<usize>, Vec<usize>) {
    let section = config.effective_section(n);
    let mut local_counts = vec![0usize; config.banks];
    let mut remote_counts = vec![0usize; config.banks];
    for (r, c, _) in m.iter() {
        let bank = (r / section) % config.banks;
        let local =
            r.abs_diff(c) <= config.local.gather_halo || (c / section) % config.banks == bank;
        if local {
            local_counts[bank] += 1;
        } else {
            remote_counts[bank] += 1;
        }
    }
    (local_counts, remote_counts)
}

impl Platform for ExactAcceleratorPlatform {
    fn n(&self) -> usize {
        self.op.n
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        let _span = memsci_telemetry::span("exact/spmv");
        memsci_telemetry::incr(memsci_telemetry::Counter::SpmvOps, 1);
        let op = Arc::clone(&self.op);
        assert_eq!(x.len(), op.n, "x length");
        assert_eq!(y.len(), op.n, "y length");
        y.fill(0.0);
        let spec = PipelineSpec::from_config(&op.config);
        let n = op.n;
        let mut mvm_opts = op.opts.mvm;
        // An armed retry budget switches detections from nearest-codeword
        // fallback to typed faults the repair lane can act on.
        mvm_opts.fault_on_detection |= op.opts.retry_limit > 0;
        let mut rbuf = std::mem::take(&mut self.rbuf);
        let banks = &mut self.banks;
        let residual = Arc::clone(&self.residual);
        let tasks = banks.len();
        let (bank_results, rbuf, _exec) = pipeline::run_stages(
            &spec,
            "exact/spmv",
            tasks,
            |threads| {
                memsci_exec::parallel_map_mut(threads, banks, |_, shard| {
                    // Worker threads start with an empty span path, so
                    // this records (and traces) as a root span per bank
                    // — the fan-out is visible as one row per lane in
                    // the timeline.
                    let _span = memsci_telemetry::span("exact/bank_shard");
                    let ExactBank {
                        bank,
                        clusters,
                        x_pad,
                    } = shard;
                    clusters
                        .iter_mut()
                        .map(|ec| {
                            let size = ec.cluster.n();
                            let hi = (ec.col0 + size).min(n);
                            let mut ybuf = std::mem::take(&mut ec.ybuf);
                            ybuf.clear();
                            ybuf.resize(size, 0.0);
                            if ec.dead {
                                // Degraded cluster: its entries live on
                                // the residual path now.
                                return ClusterOutcome {
                                    bank: *bank,
                                    row0: ec.row0,
                                    y: ybuf,
                                    energy: 0.0,
                                    time: 0.0,
                                    an_corrections: 0,
                                    an_detections: 0,
                                    faults_detected: 0,
                                    faults_corrected: 0,
                                    fault: None,
                                };
                            }
                            let x_block: &[f64] = if hi - ec.col0 == size {
                                &x[ec.col0..hi]
                            } else {
                                x_pad.clear();
                                x_pad.extend_from_slice(&x[ec.col0..hi]);
                                x_pad.resize(size, 0.0);
                                x_pad
                            };
                            match ec.cluster.mvm_with(
                                x_block,
                                &mvm_opts,
                                &mut ec.rng,
                                &mut ec.scratch,
                                &mut ybuf,
                            ) {
                                Ok(stats) => ClusterOutcome {
                                    bank: *bank,
                                    row0: ec.row0,
                                    y: ybuf,
                                    energy: stats.energy,
                                    time: stats.time,
                                    an_corrections: stats.an_corrections,
                                    an_detections: stats.an_detections,
                                    faults_detected: stats.faults_detected,
                                    faults_corrected: stats.faults_corrected,
                                    fault: None,
                                },
                                Err(MvmError::Fault(f)) => {
                                    // Aborted MVM: contribute nothing to
                                    // the merge; the repair lane re-runs
                                    // this cluster afterwards.
                                    ybuf.fill(0.0);
                                    ClusterOutcome {
                                        bank: *bank,
                                        row0: ec.row0,
                                        y: ybuf,
                                        energy: 0.0,
                                        time: 0.0,
                                        an_corrections: 0,
                                        an_detections: 1,
                                        faults_detected: u64::from(ec.cluster.fault_active()),
                                        faults_corrected: 0,
                                        fault: Some(f),
                                    }
                                }
                                Err(MvmError::Align(e)) => {
                                    panic!("vector values are finite: {e}")
                                }
                            }
                        })
                        .collect::<Vec<_>>()
                })
            },
            move || {
                rbuf.resize(n, 0.0);
                residual.spmv(x, &mut rbuf);
                memsci_telemetry::incr(
                    memsci_telemetry::Counter::ResidualFlops,
                    2 * residual.nnz() as u64,
                );
                rbuf
            },
            |bank_results, rbuf| {
                // Fixed merge order: banks ascending, clusters in build
                // order within each bank, then the residual row sums.
                for outcome in bank_results.iter().flatten() {
                    for (r, &v) in outcome.y.iter().enumerate() {
                        if v != 0.0 && outcome.row0 + r < n {
                            y[outcome.row0 + r] += v;
                        }
                    }
                }
                for (yr, rv) in y.iter_mut().zip(rbuf) {
                    *yr += rv;
                }
            },
        );
        memsci_telemetry::incr(memsci_telemetry::Counter::BankShardTasks, tasks as u64);
        let mut bank_cluster_time = vec![0.0f64; op.config.banks];
        let mut bank_interrupts = vec![0usize; op.config.banks];
        let mut energy = 0.0f64;
        for outcome in bank_results.iter().flatten() {
            energy += outcome.energy;
            bank_cluster_time[outcome.bank] = bank_cluster_time[outcome.bank].max(outcome.time);
            bank_interrupts[outcome.bank] += 1;
            self.an_corrections += outcome.an_corrections;
            self.an_detections += outcome.an_detections;
            self.faults_detected += outcome.faults_detected;
            self.faults_corrected += outcome.faults_corrected;
        }
        let local = op.config.local;
        let mut worst = 0.0f64;
        for bank in 0..op.config.banks {
            let residual_time = local.residual_time_split(
                self.bank_residual_local[bank],
                self.bank_residual_remote[bank],
            ) + bank_interrupts[bank] as f64 * local.interrupt_time;
            worst = worst.max(bank_cluster_time[bank].max(residual_time));
            energy += local.energy(residual_time);
        }
        let time = worst + op.config.barrier_time;
        self.time += time;
        self.energy += energy + op.config.system_static_power * time;
        // Return the lent buffers to their owners so the next kernel
        // runs warm (outcome order matches cluster order per bank), and
        // collect any raised faults for the serial repair lane.
        let mut faulted: Vec<(usize, usize)> = Vec::new();
        for (si, (shard, outcomes)) in self.banks.iter_mut().zip(bank_results).enumerate() {
            for (ci, (ec, outcome)) in shard.clusters.iter_mut().zip(outcomes).enumerate() {
                if outcome.fault.is_some() {
                    faulted.push((si, ci));
                }
                ec.ybuf = outcome.y;
            }
        }
        self.rbuf = rbuf;
        if !faulted.is_empty() {
            self.repair_faulted(x, y, &faulted, &mvm_opts);
        }
    }

    fn spmv_batch(&mut self, xs: &[&[f64]], ys: &mut [Vec<f64>]) {
        assert_eq!(xs.len(), ys.len(), "batch rhs/output count mismatch");
        if xs.is_empty() {
            return;
        }
        if self.op.opts.retry_limit > 0 || self.op.opts.mvm.fault_on_detection {
            // The repair lane is serial and may reprogram clusters or
            // grow the residual operator mid-batch, so armed platforms
            // take one solo kernel per RHS: every repair lands between
            // kernels and the batch reproduces k solo calls exactly.
            for (x, y) in xs.iter().zip(ys.iter_mut()) {
                y.clear();
                y.resize(self.op.n, 0.0);
                self.spmv(x, y);
            }
            return;
        }
        let k = xs.len();
        let _span = memsci_telemetry::span("exact/spmv_batch");
        memsci_telemetry::incr(memsci_telemetry::Counter::SpmvOps, k as u64);
        let op = Arc::clone(&self.op);
        let n = op.n;
        for x in xs {
            assert_eq!(x.len(), n, "x length");
        }
        for y in ys.iter_mut() {
            y.clear();
            y.resize(n, 0.0);
        }
        let spec = PipelineSpec::from_config(&op.config);
        let mvm_opts = op.opts.mvm;
        let mut rbufs = std::mem::take(&mut self.batch_rbufs);
        rbufs.resize_with(k, Vec::new);
        let banks = &mut self.banks;
        let residual = Arc::clone(&self.residual);
        let tasks = banks.len();
        // One shard fan-out streams the whole batch: each bank walks
        // its clusters once and pushes all k vectors through every
        // programmed cluster while its plan and scratch stay hot. Each
        // cluster owns a private read-noise stream, so drawing x₁..xₖ
        // consecutively per cluster reproduces exactly the draws of k
        // solo kernels (which consume the same stream in the same
        // order, one vector at a time).
        let (bank_results, rbufs, _exec) = pipeline::run_batch_stages(
            &spec,
            "exact/spmv_batch",
            tasks,
            k,
            |threads| {
                memsci_exec::parallel_map_mut(threads, banks, |_, shard| {
                    let _span = memsci_telemetry::span("exact/bank_shard");
                    let ExactBank {
                        bank,
                        clusters,
                        x_pad,
                    } = shard;
                    let mut shard_outcomes: Vec<Vec<ClusterOutcome>> =
                        Vec::with_capacity(clusters.len());
                    for ec in clusters.iter_mut() {
                        let size = ec.cluster.n();
                        let hi = (ec.col0 + size).min(n);
                        let mut per_vec = Vec::with_capacity(k);
                        for x in xs {
                            let x_block: &[f64] = if hi - ec.col0 == size {
                                &x[ec.col0..hi]
                            } else {
                                x_pad.clear();
                                x_pad.extend_from_slice(&x[ec.col0..hi]);
                                x_pad.resize(size, 0.0);
                                x_pad
                            };
                            // The warm buffer serves the first vector;
                            // later vectors need their own block since
                            // the merge reads all k of them.
                            let mut ybuf = std::mem::take(&mut ec.ybuf);
                            ybuf.resize(size, 0.0);
                            let stats = ec
                                .cluster
                                .mvm_with(
                                    x_block,
                                    &mvm_opts,
                                    &mut ec.rng,
                                    &mut ec.scratch,
                                    &mut ybuf,
                                )
                                .expect("vector values are finite");
                            per_vec.push(ClusterOutcome {
                                bank: *bank,
                                row0: ec.row0,
                                y: ybuf,
                                energy: stats.energy,
                                time: stats.time,
                                an_corrections: stats.an_corrections,
                                an_detections: stats.an_detections,
                                faults_detected: stats.faults_detected,
                                faults_corrected: stats.faults_corrected,
                                fault: None,
                            });
                        }
                        shard_outcomes.push(per_vec);
                    }
                    shard_outcomes
                })
            },
            move || {
                for (x, rbuf) in xs.iter().zip(rbufs.iter_mut()) {
                    rbuf.resize(n, 0.0);
                    residual.spmv(x, rbuf);
                    memsci_telemetry::incr(
                        memsci_telemetry::Counter::ResidualFlops,
                        2 * residual.nnz() as u64,
                    );
                }
                rbufs
            },
            |bank_results, rbufs| {
                // Per vector, the solo merge order: banks ascending,
                // clusters in build order, then the residual row sums.
                for (j, y) in ys.iter_mut().enumerate() {
                    for per_vec in bank_results.iter().flatten() {
                        let outcome = &per_vec[j];
                        for (r, &v) in outcome.y.iter().enumerate() {
                            if v != 0.0 && outcome.row0 + r < n {
                                y[outcome.row0 + r] += v;
                            }
                        }
                    }
                    for (yr, rv) in y.iter_mut().zip(&rbufs[j]) {
                        *yr += rv;
                    }
                }
            },
        );
        memsci_telemetry::incr(memsci_telemetry::Counter::BankShardTasks, tasks as u64);
        // Cost accounting runs per vector in batch order, accumulating
        // modelled time/energy in the same float order as k solo calls.
        for j in 0..k {
            let mut bank_cluster_time = vec![0.0f64; op.config.banks];
            let mut bank_interrupts = vec![0usize; op.config.banks];
            let mut energy = 0.0f64;
            for per_vec in bank_results.iter().flatten() {
                let outcome = &per_vec[j];
                energy += outcome.energy;
                bank_cluster_time[outcome.bank] = bank_cluster_time[outcome.bank].max(outcome.time);
                bank_interrupts[outcome.bank] += 1;
                self.an_corrections += outcome.an_corrections;
                self.an_detections += outcome.an_detections;
                self.faults_detected += outcome.faults_detected;
                self.faults_corrected += outcome.faults_corrected;
            }
            let local = op.config.local;
            let mut worst = 0.0f64;
            for bank in 0..op.config.banks {
                let residual_time = local.residual_time_split(
                    self.bank_residual_local[bank],
                    self.bank_residual_remote[bank],
                ) + bank_interrupts[bank] as f64 * local.interrupt_time;
                worst = worst.max(bank_cluster_time[bank].max(residual_time));
                energy += local.energy(residual_time);
            }
            let time = worst + op.config.barrier_time;
            self.time += time;
            self.energy += energy + op.config.system_static_power * time;
        }
        // Return the lent buffers: the last vector's block warms the
        // next kernel (outcome order matches cluster order per bank).
        for (shard, outcomes) in self.banks.iter_mut().zip(bank_results) {
            for (ec, mut per_vec) in shard.clusters.iter_mut().zip(outcomes) {
                if let Some(outcome) = per_vec.pop() {
                    ec.ybuf = outcome.y;
                }
            }
        }
        self.batch_rbufs = rbufs;
    }

    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]) {
        let _span = memsci_telemetry::span("exact/spmv_transpose");
        memsci_telemetry::incr(memsci_telemetry::Counter::SpmvTransposeOps, 1);
        let op = Arc::clone(&self.op);
        assert_eq!(x.len(), op.n, "x length");
        assert_eq!(y.len(), op.n, "y length");
        // A deployment would program A^T into its own clusters; here
        // the product runs on the digital residual path against the
        // ideal operator, with every non-zero charged at residual-path
        // rates. BiCG therefore pairs a noisy forward operator with an
        // ideal transpose, which the method tolerates.
        let mut rbuf = std::mem::take(&mut self.rbuf);
        let transpose = &op.transpose;
        let rbuf = pipeline::run_residual_only(
            move || {
                rbuf.resize(transpose.rows(), 0.0);
                transpose.spmv(x, &mut rbuf);
                memsci_telemetry::incr(
                    memsci_telemetry::Counter::ResidualFlops,
                    2 * transpose.nnz() as u64,
                );
                rbuf
            },
            |rbuf| y.copy_from_slice(rbuf),
        );
        self.rbuf = rbuf;
        let local = op.config.local;
        let mut worst = 0.0f64;
        let mut energy = 0.0f64;
        for bank in 0..op.config.banks {
            let time = local.residual_time_split(
                op.bank_transpose_local[bank],
                op.bank_transpose_remote[bank],
            );
            worst = worst.max(time);
            energy += local.energy(time);
        }
        let time = worst + op.config.barrier_time;
        self.time += time;
        self.energy += energy + op.config.system_static_power * time;
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        memsci_telemetry::incr(memsci_telemetry::Counter::DotOps, 1);
        let local = self.op.config.local;
        let reduce = local.global_reduce_time;
        self.dense_kernel(|e| local.dot_time(e), reduce);
        dot_f64(x, y)
    }

    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        memsci_telemetry::incr(memsci_telemetry::Counter::AxpbyOps, 1);
        let barrier = self.op.config.barrier_time;
        let local = self.op.config.local;
        self.dense_kernel(|e| local.axpy_time(e), barrier);
        axpby_f64(alpha, x, beta, y);
    }

    fn diagonal(&self) -> Arc<[f64]> {
        self.op.diagonal()
    }

    fn elapsed_seconds(&self) -> f64 {
        self.time
    }

    fn energy_joules(&self) -> f64 {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::generate::poisson2d;
    use memsci_sparse::BlockingConfig;

    fn build(n_grid: usize) -> (Csr, ExactAcceleratorPlatform) {
        let a = poisson2d(n_grid, n_grid);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let acc = ExactAcceleratorPlatform::new(
            &blocked,
            AcceleratorConfig::with_banks(2),
            ExactOptions::default(),
        )
        .unwrap();
        (a, acc)
    }

    #[test]
    fn exact_spmv_is_close_to_f64_reference() {
        let (a, mut acc) = build(12);
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin() + 1.5).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        acc.spmv(&x, &mut y1);
        a.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            // Per-block dots are floor-rounded at 53 bits, then summed
            // across blocks in f64: a few ULPs at most.
            assert!((u - v).abs() <= 1e-12 * v.abs().max(1.0), "{u} vs {v}");
        }
        assert!(acc.elapsed_seconds() > 0.0);
        assert!(acc.energy_joules() > 0.0);
    }

    #[test]
    fn exact_spmv_transpose_matches_explicit_transpose() {
        let (a, mut acc) = build(12);
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos() - 0.4).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        let before = acc.elapsed_seconds();
        acc.spmv_transpose(&x, &mut y1);
        a.transpose().spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            // Ideal values on the digital path; only the blocking
            // partition reorders the sums.
            assert!((u - v).abs() <= 1e-12 * v.abs().max(1.0), "{u} vs {v}");
        }
        assert!(
            acc.elapsed_seconds() > before,
            "transpose products must cost time"
        );
    }

    #[test]
    fn bicg_converges_on_the_exact_platform() {
        let (a, mut acc) = build(10);
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = memsci_solvers::SolveOptions::with_tol(1e-8);
        let rep = memsci_solvers::bicg::bicg(&mut acc, &b, &mut x, &opts);
        assert!(
            rep.converged,
            "iters {} res {}",
            rep.iterations, rep.relative_residual
        );
        // The returned solution really solves the system.
        let mut r = vec![0.0; n];
        a.spmv(&x, &mut r);
        let err: f64 = r
            .iter()
            .zip(&b)
            .map(|(ri, bi)| (ri - bi).powi(2))
            .sum::<f64>()
            .sqrt();
        let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / nb < 1e-6, "residual {}", err / nb);
    }

    #[test]
    fn cg_converges_on_the_exact_platform() {
        let (a, mut acc) = build(10);
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = memsci_solvers::SolveOptions::with_tol(1e-8);
        let rep = memsci_solvers::cg::cg(&mut acc, &b, &mut x, &opts);
        assert!(
            rep.converged,
            "iters {} res {}",
            rep.iterations, rep.relative_residual
        );
        // Compare against the reference solve: same tolerance reached.
        let mut reference = memsci_solvers::CsrPlatform::new(a);
        let mut xr = vec![0.0; n];
        let rep_ref = memsci_solvers::cg::cg(&mut reference, &b, &mut xr, &opts);
        assert!(rep_ref.converged);
        // Iteration counts match within a small slack (the platform
        // rounds per-block dots toward −∞ instead of to nearest).
        let diff = rep.iterations.abs_diff(rep_ref.iterations);
        assert!(
            diff <= 2,
            "exact {} vs reference {}",
            rep.iterations,
            rep_ref.iterations
        );
    }

    #[test]
    fn overlap_and_threads_are_bit_identical_exact() {
        // Both the deterministic fast path and the noisy path (which
        // draws from the per-cluster read-noise streams) must produce
        // bitwise-identical results under every host execution mode:
        // merge order is fixed bank-major and every cluster owns its
        // own RNG stream keyed by build index, not worker thread.
        for rtn in [0.0, 0.02] {
            let a = poisson2d(12, 12);
            let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
            let n = a.rows();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos() + 0.8).collect();
            let mut reference: Option<(Vec<u64>, Vec<u64>)> = None;
            for overlap in [false, true] {
                for threads in [1, 2, 4] {
                    let mut config = AcceleratorConfig::with_banks(4);
                    config.threads = Some(threads);
                    config.overlap = Some(overlap);
                    let mut acc = ExactAcceleratorPlatform::new(
                        &blocked,
                        config,
                        ExactOptions {
                            seed: 7,
                            rtn_probability: rtn,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    assert!(acc.banks.len() > 1, "want several bank shards");
                    let mut y = vec![0.0; n];
                    let mut yt = vec![0.0; n];
                    acc.spmv(&x, &mut y);
                    acc.spmv_transpose(&x, &mut yt);
                    let bits = (
                        y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                        yt.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                    );
                    match &reference {
                        None => reference = Some(bits),
                        Some(want) => {
                            assert_eq!(&bits, want, "rtn={rtn} threads={threads} overlap={overlap}")
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn faulty_clusters_repair_and_cg_still_converges() {
        // Stuck-at cells make AN checks report uncorrectable errors;
        // with an armed retry budget the platform reprograms afflicted
        // clusters (wear-aware) and, once budgets run out, degrades
        // them to the exact residual path — so CG still converges and
        // no fault ever panics or silently corrupts the solve.
        use memsci_xbar::FaultModel;
        let a = poisson2d(10, 10);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let mut config = AcceleratorConfig::with_banks(2);
        config.cell = config
            .cell
            .with_fault(FaultModel::none().with_stuck_rates(0.003, 0.003));
        let mut acc = ExactAcceleratorPlatform::new(
            &blocked,
            config,
            ExactOptions {
                seed: 11,
                retry_limit: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = memsci_solvers::SolveOptions::with_tol(1e-8).max_iters(4000);
        let rep = memsci_solvers::cg::cg(&mut acc, &b, &mut x, &opts);
        assert!(
            rep.converged,
            "iters {} res {}",
            rep.iterations, rep.relative_residual
        );
        assert!(acc.faults_detected > 0, "stuck cells must raise faults");
        assert!(acc.cluster_reprograms > 0, "faults must trigger repairs");
        // Wear accounting covers the initial programs plus every repair.
        let wear: u64 = acc.bank_wear().iter().sum();
        assert_eq!(
            wear,
            acc.cluster_count() as u64 + acc.cluster_reprograms,
            "bank wear must tally initial programs plus repairs"
        );
        // The solution really solves the system.
        let mut r = vec![0.0; n];
        a.spmv(&x, &mut r);
        let err: f64 = r
            .iter()
            .zip(&b)
            .map(|(ri, bi)| (ri - bi).powi(2))
            .sum::<f64>()
            .sqrt();
        let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / nb < 1e-6, "residual {}", err / nb);
    }

    #[test]
    fn retries_exhausted_degrades_without_panicking() {
        // A zero retry budget is impossible to arm, so use limit 1 with
        // aggressive stuck rates: fresh programming keeps injecting
        // faults, budgets run out, clusters degrade to the residual
        // path, and the solve still converges on exact arithmetic.
        use memsci_xbar::FaultModel;
        let a = poisson2d(10, 10);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let mut config = AcceleratorConfig::with_banks(2);
        config.cell = config
            .cell
            .with_fault(FaultModel::none().with_stuck_rates(0.05, 0.05));
        let mut acc = ExactAcceleratorPlatform::new(
            &blocked,
            config,
            ExactOptions {
                seed: 3,
                retry_limit: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = memsci_solvers::SolveOptions::with_tol(1e-8).max_iters(4000);
        let rep = memsci_solvers::cg::cg(&mut acc, &b, &mut x, &opts);
        assert!(acc.retries_exhausted > 0, "budgets must run out");
        assert_eq!(
            acc.retries_exhausted,
            acc.degraded_clusters() as u64,
            "every exhausted budget degrades exactly one cluster"
        );
        assert!(
            rep.converged,
            "degraded residual path must still converge: iters {} res {}",
            rep.iterations, rep.relative_residual
        );
    }

    #[test]
    fn armed_but_zero_fault_options_are_bit_identical() {
        // retry_limit > 0 with an all-zero fault model must not change
        // a single bit relative to the default options: the repair lane
        // is pay-for-what-you-use. rtn=1e-300 exercises the noisy path
        // (per-read draws happen) without ever upsetting a column.
        use memsci_xbar::FaultModel;
        for rtn in [0.0, 1e-300] {
            let a = poisson2d(12, 12);
            let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
            let n = a.rows();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin() + 1.1).collect();
            let mut base = ExactAcceleratorPlatform::new(
                &blocked,
                AcceleratorConfig::with_banks(2),
                ExactOptions {
                    seed: 5,
                    rtn_probability: rtn,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut config = AcceleratorConfig::with_banks(2);
            config.cell = config.cell.with_fault(FaultModel::none());
            let mut armed = ExactAcceleratorPlatform::new(
                &blocked,
                config,
                ExactOptions {
                    seed: 5,
                    rtn_probability: rtn,
                    retry_limit: 3,
                    write_age: 0,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            base.spmv(&x, &mut y1);
            armed.spmv(&x, &mut y2);
            let b1: Vec<u64> = y1.iter().map(|v| v.to_bits()).collect();
            let b2: Vec<u64> = y2.iter().map(|v| v.to_bits()).collect();
            assert_eq!(b1, b2, "rtn={rtn}");
            assert_eq!(armed.cluster_reprograms, 0);
            assert_eq!(armed.retries_exhausted, 0);
        }
    }

    #[test]
    fn programming_noise_degrades_convergence() {
        let a = poisson2d(10, 10);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let mut config = AcceleratorConfig::with_banks(2);
        config.cell = config
            .cell
            .with_programming_sigma(0.05)
            .with_bits_per_cell(2);
        let mut noisy = ExactAcceleratorPlatform::new(
            &blocked,
            config,
            ExactOptions {
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let n = a.rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = memsci_solvers::SolveOptions::with_tol(1e-8).max_iters(4000);
        let rep_noisy = memsci_solvers::cg::cg(&mut noisy, &b, &mut x, &opts);
        let (_, mut clean) = build(10);
        let mut xc = vec![0.0; n];
        let rep_clean = memsci_solvers::cg::cg(&mut clean, &b, &mut xc, &opts);
        assert!(rep_clean.converged);
        // Two-bit cells with 5% programming error hinder convergence
        // (Figure 13): more iterations or outright failure.
        assert!(
            !rep_noisy.converged || rep_noisy.iterations > rep_clean.iterations,
            "noisy {} vs clean {}",
            rep_noisy.iterations,
            rep_clean.iterations
        );
    }
}
