//! Setup overheads and system endurance (§VIII-D, §VIII-E).
//!
//! Iterative solves amortize two one-time costs: the blocking
//! preprocessing pass (worst case four touches per non-zero,
//! §V-B1/§VII-B) and programming the crossbars. Endurance follows from
//! the program-once-per-solve usage: even assuming a full rewrite
//! between solves, TaOx cells with 10⁹ write endurance last more than a
//! century.

use memsci_sparse::BlockingStats;

/// One-time setup costs for a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetupCost {
    /// Preprocessing (blocking) time, seconds.
    pub preprocessing_time: f64,
    /// Crossbar programming time, seconds.
    pub write_time: f64,
    /// Crossbar programming energy, joules.
    pub write_energy: f64,
}

impl SetupCost {
    /// Total setup time.
    pub fn total_time(&self) -> f64 {
        self.preprocessing_time + self.write_time
    }

    /// Setup time as a fraction of a full solve (Figure 10's metric).
    pub fn overhead_fraction(&self, solve_time: f64) -> f64 {
        if solve_time <= 0.0 {
            return 0.0;
        }
        self.total_time() / (self.total_time() + solve_time)
    }
}

/// Preprocessing time: the measured touches-per-non-zero (1–4, §V-B1)
/// expressed as baseline MVM equivalents (§VII-B charges the worst case
/// of four).
pub fn preprocessing_time(
    stats: &BlockingStats,
    rows: usize,
    baseline_mvm_time: impl Fn(usize, usize) -> f64,
) -> f64 {
    stats.touches_per_nnz() * baseline_mvm_time(rows, stats.nnz_total)
}

/// System lifetime in years under the paper's conservative §VIII-E
/// assumptions: every cell rewritten between solves, the system running
/// continuously.
///
/// # Examples
///
/// ```
/// use memsci_core::overhead::lifetime_years;
///
/// // A 3-second solve with a 1 ms rewrite and 10^9 endurance lasts
/// // about 95 years.
/// let years = lifetime_years(3.0, 1.0e-3, 1.0e9);
/// assert!(years > 90.0 && years < 100.0);
/// ```
pub fn lifetime_years(solve_time: f64, rewrite_time: f64, write_endurance: f64) -> f64 {
    const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;
    write_endurance * (solve_time + rewrite_time) / SECONDS_PER_YEAR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction_bounds() {
        let s = SetupCost {
            preprocessing_time: 1.0,
            write_time: 1.0,
            write_energy: 0.0,
        };
        assert!((s.overhead_fraction(18.0) - 0.1).abs() < 1e-12);
        assert_eq!(s.overhead_fraction(0.0), 0.0);
        assert_eq!(s.total_time(), 2.0);
    }

    #[test]
    fn preprocessing_scales_with_touches() {
        let stats = BlockingStats {
            nnz_total: 1000,
            nnz_blocked: 800,
            nnz_evicted_range: 0,
            touches: 1800, // the paper's observed 1.8x average
            blocks_by_size: Default::default(),
        };
        let t = preprocessing_time(&stats, 100, |_, nnz| nnz as f64 * 1.0e-9);
        assert!((t - 1.8e-6).abs() < 1e-15);
    }

    #[test]
    fn endurance_exceeds_a_century_for_realistic_solves() {
        // §VIII-E: iterative solves take seconds; 10^9 writes -> >100 y.
        assert!(lifetime_years(3.2, 1.0e-3, 1.0e9) > 100.0);
        // Pathologically short solves would wear out sooner.
        assert!(lifetime_years(1.0e-3, 1.0e-3, 1.0e9) < 1.0);
    }
}
