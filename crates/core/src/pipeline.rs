//! The staged SpMV pipeline shared by every platform.
//!
//! The paper's accelerator executes one logical SpMV as distinct
//! hardware phases: operand decomposition and alignment (§IV-A/C),
//! per-cluster crossbar MVMs with early termination (§IV-B), the
//! residual CSR pass on the banks' local processors (§V-B1), and an
//! ordered merge of the partial results. This module makes those
//! phases explicit: each platform expresses its kernel as a *cluster
//! lane* (the embarrassingly parallel per-cluster / per-device work), a
//! *residual lane* (the digital CSR pass), and an *ordered merge*, and
//! [`run_stages`] executes them with per-stage telemetry spans.
//!
//! Two host-side degrees of freedom hang off the shared skeleton, both
//! resolved per kernel by [`PipelineSpec::from_config`]:
//!
//! * **Worker threads** for the cluster lane (`MEMSCI_THREADS`, then
//!   `AcceleratorConfig::threads`, then machine parallelism).
//! * **Lane overlap** (`MEMSCI_OVERLAP`, then
//!   `AcceleratorConfig::overlap`, default off): the residual lane runs
//!   on a scoped thread concurrently with the cluster lane, mirroring
//!   the hardware's ability to keep the local processors busy while
//!   the crossbars integrate.
//!
//! **Bit-identity argument.** Both lanes write only private buffers —
//! the cluster lane returns per-cluster partials, the residual lane
//! returns a fresh row-sum buffer — and the merge runs strictly after
//! both lanes complete, adding partials into `y` in a fixed order
//! (clusters in storage order, then the residual buffer row-wise). The
//! floating-point reduction order is therefore a pure function of the
//! operator, never of the thread count or the overlap switch, so any
//! `(threads, overlap)` setting produces bit-identical results.

use memsci_exec::ExecStats;

use crate::config::AcceleratorConfig;

/// Span name for the blocking/alignment phase of platform construction.
pub const STAGE_DECOMPOSE: &str = "decompose";
/// Span name for the cluster-programming phase of platform construction.
pub const STAGE_PROGRAM: &str = "program";
/// Span name of the per-cluster (or per-device) compute lane.
pub const STAGE_CLUSTER: &str = "cluster_mvm";
/// Span name of the residual-CSR lane.
pub const STAGE_RESIDUAL: &str = "residual_csr";
/// Span name of the ordered merge stage.
pub const STAGE_MERGE: &str = "merge";
/// Span name of a batched multi-RHS kernel (wraps the lane stages).
pub const STAGE_BATCH: &str = "batch_mvm";

/// Host execution parameters of one staged kernel, resolved from the
/// environment and the accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Worker threads for the cluster lane.
    pub threads: usize,
    /// Whether the residual lane overlaps the cluster lane.
    pub overlap: bool,
}

impl PipelineSpec {
    /// Resolves the spec for a kernel: `MEMSCI_THREADS` /
    /// `MEMSCI_OVERLAP` override the configuration, which overrides
    /// the defaults (machine parallelism, no overlap).
    pub fn from_config(config: &AcceleratorConfig) -> Self {
        PipelineSpec {
            threads: memsci_exec::worker_count(config.threads),
            overlap: memsci_exec::overlap_enabled(config.overlap),
        }
    }

    /// A serial spec (one thread, no overlap) — the reference
    /// execution order every other spec must reproduce bit for bit.
    pub fn serial() -> Self {
        PipelineSpec {
            threads: 1,
            overlap: false,
        }
    }
}

/// Runs a two-lane staged kernel: cluster lane and residual lane
/// (overlapped when the spec says so), then the ordered merge.
///
/// The cluster lane receives the resolved worker count and returns its
/// partials; the residual lane returns its private buffer; `merge`
/// observes both and folds them into the caller's output in a fixed
/// order. Returns both lane results (for cost accounting) plus the
/// [`ExecStats`] of the lane section.
///
/// Span accounting: the two lane stages and the merge each open a span
/// ([`STAGE_CLUSTER`], [`STAGE_RESIDUAL`], [`STAGE_MERGE`]) nested
/// under whatever kernel span the caller holds. When the lanes overlap,
/// the residual lane runs on a fresh scoped thread, so its span records
/// at the thread root rather than under the kernel span (worker threads
/// start with an empty span path); the merge and cluster stages keep
/// their nested paths in both modes.
pub fn run_stages<C, R>(
    spec: &PipelineSpec,
    section: &str,
    tasks: usize,
    cluster_lane: impl FnOnce(usize) -> C + Send,
    residual_lane: impl FnOnce() -> R + Send,
    merge: impl FnOnce(&C, &R),
) -> (C, R, ExecStats)
where
    C: Send,
    R: Send,
{
    let threads = spec.threads;
    let ((clusters, residual), exec) = memsci_exec::timed(threads, tasks, || {
        memsci_exec::overlap2(
            spec.overlap,
            || {
                let _g = memsci_telemetry::span(STAGE_CLUSTER);
                cluster_lane(threads)
            },
            || {
                let _g = memsci_telemetry::span(STAGE_RESIDUAL);
                residual_lane()
            },
        )
    });
    if spec.overlap {
        memsci_telemetry::incr(memsci_telemetry::Counter::OverlapKernels, 1);
    }
    memsci_telemetry::record_exec(section, exec.threads, exec.tasks, exec.wall_seconds);
    {
        let _g = memsci_telemetry::span(STAGE_MERGE);
        merge(&clusters, &residual);
    }
    (clusters, residual, exec)
}

/// Runs a batched multi-RHS staged kernel: the same two-lane skeleton
/// as [`run_stages`], but opened under a [`STAGE_BATCH`] span and
/// accounted as one batch of `rhs` right-hand sides.
///
/// The point of the batch lane is amortization (§VIII-D): the operator
/// was decomposed and programmed once at platform build, and one
/// invocation here streams all `rhs` vectors through the programmed
/// clusters — the cluster lane fans out across workers *once* per
/// batch instead of once per vector, and each shard keeps its plan and
/// scratch state hot while it walks the whole batch. The bit-identity
/// argument of [`run_stages`] carries over unchanged: lanes write only
/// private buffers and the merge folds them in a fixed order, so a
/// batched kernel reproduces `rhs` sequential kernels bit for bit.
pub fn run_batch_stages<C, R>(
    spec: &PipelineSpec,
    section: &str,
    tasks: usize,
    rhs: usize,
    cluster_lane: impl FnOnce(usize) -> C + Send,
    residual_lane: impl FnOnce() -> R + Send,
    merge: impl FnOnce(&C, &R),
) -> (C, R, ExecStats)
where
    C: Send,
    R: Send,
{
    let _batch = memsci_telemetry::span(STAGE_BATCH);
    memsci_telemetry::incr(memsci_telemetry::Counter::BatchMvmOps, 1);
    memsci_telemetry::incr(memsci_telemetry::Counter::BatchRhsVectors, rhs as u64);
    run_stages(spec, section, tasks, cluster_lane, residual_lane, merge)
}

/// Runs a cluster-lane-only staged kernel (no residual lane at this
/// level — e.g. the multi-accelerator platform, whose devices each run
/// their own residual pass inside the lane). Overlap has nothing to
/// overlap here, so the spec's switch is ignored.
pub fn run_cluster_only<C: Send>(
    spec: &PipelineSpec,
    section: &str,
    tasks: usize,
    cluster_lane: impl FnOnce(usize) -> C + Send,
    merge: impl FnOnce(&C),
) -> (C, ExecStats) {
    let threads = spec.threads;
    let (clusters, exec) = memsci_exec::timed(threads, tasks, || {
        let _g = memsci_telemetry::span(STAGE_CLUSTER);
        cluster_lane(threads)
    });
    memsci_telemetry::record_exec(section, exec.threads, exec.tasks, exec.wall_seconds);
    {
        let _g = memsci_telemetry::span(STAGE_MERGE);
        merge(&clusters);
    }
    (clusters, exec)
}

/// Batched counterpart of [`run_cluster_only`]: one cluster-lane fan-
/// out streams `rhs` right-hand sides (the multi-accelerator platform's
/// devices are the shards), under a [`STAGE_BATCH`] span with batch
/// counters.
pub fn run_batch_cluster_only<C: Send>(
    spec: &PipelineSpec,
    section: &str,
    tasks: usize,
    rhs: usize,
    cluster_lane: impl FnOnce(usize) -> C + Send,
    merge: impl FnOnce(&C),
) -> (C, ExecStats) {
    let _batch = memsci_telemetry::span(STAGE_BATCH);
    memsci_telemetry::incr(memsci_telemetry::Counter::BatchMvmOps, 1);
    memsci_telemetry::incr(memsci_telemetry::Counter::BatchRhsVectors, rhs as u64);
    run_cluster_only(spec, section, tasks, cluster_lane, merge)
}

/// Runs a residual-lane-only staged kernel (no clusters — e.g. the
/// exact platform's transpose, which executes entirely on the digital
/// path). Serial by construction.
pub fn run_residual_only<R>(residual_lane: impl FnOnce() -> R, merge: impl FnOnce(&R)) -> R {
    let residual = {
        let _g = memsci_telemetry::span(STAGE_RESIDUAL);
        residual_lane()
    };
    {
        let _g = memsci_telemetry::span(STAGE_MERGE);
        merge(&residual);
    }
    residual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_resolution_prefers_config() {
        let mut config = AcceleratorConfig::with_banks(1);
        config.threads = Some(3);
        config.overlap = Some(true);
        // Without env overrides the configured values win. (Tests never
        // set MEMSCI_THREADS/MEMSCI_OVERLAP, so from_config sees the
        // configured values; asserting exact equality would race with
        // an operator-set environment, so check the serial baseline.)
        assert_eq!(PipelineSpec::serial().threads, 1);
        assert!(!PipelineSpec::serial().overlap);
        let spec = PipelineSpec::from_config(&config);
        assert!(spec.threads >= 1);
    }

    #[test]
    fn stages_merge_after_both_lanes_in_every_mode() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.21).sin()).collect();
        let mut reference: Option<Vec<u64>> = None;
        for overlap in [false, true] {
            for threads in [1, 2, 4] {
                let spec = PipelineSpec { threads, overlap };
                let mut y = vec![0.0f64; 100];
                let (c, r, exec) = run_stages(
                    &spec,
                    "pipeline/test",
                    4,
                    |t| memsci_exec::parallel_map(t, &x, |_, v| v * 3.0),
                    || x.iter().map(|v| v * v).collect::<Vec<f64>>(),
                    |c, r| {
                        for ((yi, ci), ri) in y.iter_mut().zip(c).zip(r) {
                            *yi = ci + ri;
                        }
                    },
                );
                assert_eq!(c.len(), 100);
                assert_eq!(r.len(), 100);
                assert_eq!(exec.threads, threads);
                assert_eq!(exec.tasks, 4);
                let bits: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                match &reference {
                    None => reference = Some(bits),
                    Some(want) => {
                        assert_eq!(&bits, want, "threads={threads} overlap={overlap}")
                    }
                }
            }
        }
    }

    #[test]
    fn cluster_only_and_residual_only_run_their_stages() {
        let spec = PipelineSpec::serial();
        let mut total = 0.0;
        let (c, exec) = run_cluster_only(
            &spec,
            "pipeline/test",
            3,
            |t| memsci_exec::parallel_tasks(t, 3, |i| i as f64 + 0.5),
            |c| total = c.iter().sum(),
        );
        assert_eq!(c.len(), 3);
        assert_eq!(exec.tasks, 3);
        assert_eq!(total, 4.5);
        let mut copied = Vec::new();
        let r = run_residual_only(|| vec![1.0, 2.0], |r| copied.clone_from(r));
        assert_eq!(r, copied);
    }
}
