//! The fast accelerator engine: functional kernels with analytic cost.
//!
//! Solver-scale runs (Figures 8–10 cover matrices with millions of
//! non-zeros and thousands of iterations) cannot afford bit-level
//! simulation of every crossbar, so this engine computes kernels in
//! `f64` — the same precision class the hardware guarantees (§IV) — and
//! models cost analytically:
//!
//! * per-cluster vector-slice counts come from the early-termination
//!   model of §IV-B, driven by the actual data (block exponent base,
//!   per-apply vector exponent statistics, and each row's dot-product
//!   magnitude);
//! * energy combines per-conversion ADC cost with headstart, the
//!   skip-settled-columns saving, and crossbar base energy, using the
//!   Table III-calibrated [`CostModel`];
//! * the bank's local processor handles residual non-zeros in CSR and
//!   the dense kernels over its 1200-element vector sections (§VI).
//!
//! The bit-exact counterpart lives in [`crate::exact`]; a test in
//! `tests/` checks this engine's slice-count estimate against it.
//!
//! [`CostModel`]: memsci_xbar::CostModel

use std::sync::Arc;

use memsci_exec::ExecStats;
use memsci_solvers::platform::{axpby_f64, dot_f64, Platform};
use memsci_sparse::{BlockedMatrix, Coo, Csr};

use crate::config::AcceleratorConfig;
use crate::mapping::{map_blocks, Mapping};
use crate::pipeline::{self, PipelineSpec};

/// Cost and utilization statistics of the most recent sparse MVM.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpmvStats {
    /// Wall-clock model time of the MVM, seconds.
    pub time: f64,
    /// Energy of the MVM, joules.
    pub energy: f64,
    /// Slowest bank's cluster pipeline time, seconds.
    pub cluster_time: f64,
    /// Slowest bank's residual-processing time, seconds.
    pub residual_time: f64,
    /// Mean vector slices applied per cluster.
    pub avg_slices: f64,
    /// Maximum vector slices applied by any cluster.
    pub max_slices: usize,
    /// Fraction of potential conversions skipped by early termination.
    pub skipped_fraction: f64,
    /// Host execution stats of the parallel per-cluster section
    /// (wall-clock measurement, not modelled accelerator time).
    pub exec: ExecStats,
}

/// One cluster in the fast engine.
#[derive(Debug, Clone)]
struct FastCluster {
    bank: usize,
    size: usize,
    row0: usize,
    col0: usize,
    /// Entries grouped per matrix row: `(local_row, entries(col, val))`.
    rows: Vec<(u16, Vec<(u16, f64)>)>,
    /// Fixed-point LSB exponent of the stored block.
    exp_base: i32,
    /// Bit-group crossbars in the cluster.
    groups: usize,
    /// Magnitude bound (bits) of a de-biased partial dot product.
    pm_bits: i64,
    /// Per-row estimated SAR bits searched (headstart model).
    searched_bits: Vec<u32>,
    /// Programming time and energy.
    write_time: f64,
    write_energy: f64,
}

/// The immutable programmed state of the fast engine: the decomposed,
/// crossbar-mapped operator, shared across any number of solve
/// sessions.
///
/// Everything here is written once when the matrix is programmed and
/// only read afterwards, so the operator is `Send + Sync` and lives
/// behind an [`Arc`]: concurrent sessions built with
/// [`AcceleratorPlatform::from_operator`] all read the same programmed
/// clusters without repeating the expensive crossbar writes (§VIII-D).
#[derive(Debug)]
pub struct FastOperator {
    config: AcceleratorConfig,
    n: usize,
    clusters: Vec<FastCluster>,
    residual: Csr,
    residual_t: Csr,
    /// Residual non-zeros per bank whose gathers stay in the bank's own
    /// vector section.
    bank_residual_local: Vec<usize>,
    /// Residual non-zeros per bank gathering through global memory.
    bank_residual_remote: Vec<usize>,
    /// Dense-kernel elements owned by each bank.
    bank_elems: Vec<usize>,
    /// Blocking efficiency of the underlying preprocessing run.
    blocking_efficiency: f64,
    /// Precomputed transpose cost stand-in: one `1.0` per cluster row
    /// (part of the MVM plan, not scratch — never cleared).
    dots_est: Vec<Vec<f64>>,
    /// The operator's main diagonal, assembled once at program time.
    diag: Arc<[f64]>,
}

/// The fast accelerator platform (Table I system by default): a solve
/// session owning per-call scratch arenas and cost accumulators over a
/// shared programmed [`FastOperator`].
#[derive(Debug, Clone)]
pub struct AcceleratorPlatform {
    op: Arc<FastOperator>,
    /// Per-cluster dot-product buffers reused across forward MVMs.
    scratch_dots: Vec<Vec<f64>>,
    /// Per-cluster column buffers reused across transpose MVMs.
    scratch_cols: Vec<Vec<f64>>,
    /// Per-cluster, per-RHS dot buffers reused across batched MVMs.
    scratch_batch_dots: Vec<Vec<Vec<f64>>>,
    /// Residual-lane row sums reused across kernels.
    rbuf: Vec<f64>,
    /// Per-RHS residual-lane row sums reused across batched MVMs.
    batch_rbufs: Vec<Vec<f64>>,
    /// Per-bank accumulators reused by the cost model.
    bank_time_scratch: Vec<f64>,
    bank_interrupts_scratch: Vec<usize>,
    time: f64,
    energy: f64,
    last_spmv: SpmvStats,
    spmv_count: u64,
}

impl FastOperator {
    /// Decomposes, maps, and programs a blocked matrix into the
    /// crossbars, producing the shareable operator.
    ///
    /// # Panics
    ///
    /// Panics if the blocked matrix is not square.
    pub fn program(blocked: &BlockedMatrix, config: AcceleratorConfig) -> Self {
        let (rows, cols) = blocked.shape();
        assert_eq!(rows, cols, "platform matrices must be square");
        let _span = memsci_telemetry::span("engine/build");
        let mapping = {
            let _g = memsci_telemetry::span(pipeline::STAGE_DECOMPOSE);
            map_blocks(blocked, &config)
        };
        Self::from_mapping(blocked, mapping, config)
    }

    fn from_mapping(blocked: &BlockedMatrix, mapping: Mapping, config: AcceleratorConfig) -> Self {
        let (rows, _) = blocked.shape();
        let n = rows;
        // Residual = preprocessing residual + mapping overflow.
        let mut residual_coo = blocked.residual.to_coo();
        for &(r, c, v) in &mapping.extra_residual {
            residual_coo
                .push(r as usize, c as usize, v)
                .expect("overflow entry in range");
        }
        let residual = residual_coo.to_csr();
        let residual_t = residual.transpose();

        let an_bits = if config.an_enabled { 9 } else { 0 };
        let b = config.cell.bits_per_cell;
        let _program_span = memsci_telemetry::span(pipeline::STAGE_PROGRAM);
        memsci_telemetry::incr(memsci_telemetry::Counter::OperatorPrograms, 1);
        let clusters: Vec<FastCluster> = mapping
            .clusters
            .iter()
            .filter(|load| !load.entries.is_empty())
            .map(|load| {
                let values: Vec<f64> = load.entries.iter().map(|&(_, _, v)| v).collect();
                let alignment = memsci_numeric::align::analyze(values.iter().copied())
                    .expect("blocked values are finite")
                    .expect("non-empty cluster");
                let bias_bit = alignment.magnitude_bits;
                let stored_bits = bias_bit + 1 + an_bits;
                let groups = (stored_bits as u32).div_ceil(b) as usize;
                let size = load.size as usize;
                let n_bits = usize::BITS - size.leading_zeros();
                let pm_bits = bias_bit as i64 + 1 + i64::from(n_bits);
                let mut per_row: std::collections::BTreeMap<u16, Vec<(u16, f64)>> =
                    std::collections::BTreeMap::new();
                for &(r, c, v) in &load.entries {
                    per_row.entry(r).or_default().push((c, v));
                }
                let resolution = config.cost.resolution(size, b);
                let rows: Vec<(u16, Vec<(u16, f64)>)> = per_row.into_iter().collect();
                let searched_bits = rows
                    .iter()
                    .map(|(_, entries)| {
                        // Headstart: columns hold about half their row's
                        // operand bits as ones.
                        let ones = (entries.len() as u64).max(1);
                        (64 - ones.leading_zeros()).clamp(1, resolution)
                    })
                    .collect();
                let write_model = memsci_xbar::WriteModel::default();
                let set_cells = (load.entries.len() * groups) as u64 / 2;
                FastCluster {
                    bank: load.bank,
                    size,
                    row0: load.row0 as usize,
                    col0: load.col0 as usize,
                    rows,
                    exp_base: alignment.exp_base,
                    groups,
                    pm_bits,
                    searched_bits,
                    write_time: write_model.cluster_write_time(size),
                    write_energy: write_model.write_energy(set_cells),
                }
            })
            .collect();

        let section = config.effective_section(n);
        let mut bank_residual_local = vec![0usize; config.banks];
        let mut bank_residual_remote = vec![0usize; config.banks];
        for (r, c, _) in residual.iter() {
            let bank = bank_of_row(r, section, config.banks);
            let local = r.abs_diff(c) <= config.local.gather_halo
                || bank_of_row(c, section, config.banks) == bank;
            if local {
                bank_residual_local[bank] += 1;
            } else {
                bank_residual_remote[bank] += 1;
            }
        }
        let mut bank_elems = vec![0usize; config.banks];
        for r in 0..n {
            bank_elems[bank_of_row(r, section, config.banks)] += 1;
        }

        let dots_est: Vec<Vec<f64>> = clusters.iter().map(|c| vec![1.0; c.rows.len()]).collect();
        // The operator's diagonal, assembled once: residual diagonal
        // plus every on-diagonal blocked entry, in cluster storage
        // order (bitwise the same fold the old per-call path performed).
        let mut diag = residual.diagonal();
        for cluster in &clusters {
            for (lr, entries) in &cluster.rows {
                let gr = cluster.row0 + *lr as usize;
                for &(c, v) in entries {
                    if cluster.col0 + c as usize == gr {
                        diag[gr] += v;
                    }
                }
            }
        }
        FastOperator {
            n,
            clusters,
            residual,
            residual_t,
            bank_residual_local,
            bank_residual_remote,
            bank_elems,
            blocking_efficiency: blocked.stats.efficiency(),
            dots_est,
            diag: diag.into(),
            config,
        }
    }

    /// The configuration the operator was programmed under.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of populated clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Non-zeros handled by the local processors.
    pub fn residual_nnz(&self) -> usize {
        self.residual.nnz()
    }

    /// Blocking efficiency of the underlying matrix.
    pub fn blocking_efficiency(&self) -> f64 {
        self.blocking_efficiency
    }

    /// The operator's main diagonal, precomputed at program time.
    pub fn diagonal(&self) -> Arc<[f64]> {
        Arc::clone(&self.diag)
    }

    /// Total time to program every cluster, with the clusters of
    /// different banks writing in parallel and those within a bank
    /// sequentially (§VIII-D).
    pub fn write_time(&self) -> f64 {
        let mut per_bank = vec![0.0f64; self.config.banks];
        for c in &self.clusters {
            per_bank[c.bank] += c.write_time;
        }
        per_bank.iter().copied().fold(0.0, f64::max)
    }

    /// Total programming energy.
    pub fn write_energy(&self) -> f64 {
        self.clusters.iter().map(|c| c.write_energy).sum()
    }
}

impl AcceleratorPlatform {
    /// Builds the engine from a blocked matrix: programs a fresh
    /// operator and opens a session on it.
    ///
    /// # Panics
    ///
    /// Panics if the blocked matrix is not square.
    pub fn new(blocked: &BlockedMatrix, config: AcceleratorConfig) -> Self {
        Self::from_operator(Arc::new(FastOperator::program(blocked, config)))
    }

    /// Opens a fresh solve session on an already-programmed operator.
    ///
    /// No crossbar writes happen here: the session only allocates its
    /// (initially empty) scratch arenas and zeroed cost accumulators.
    /// A session built this way behaves bitwise identically to one
    /// built by [`AcceleratorPlatform::new`] on the same matrix.
    pub fn from_operator(op: Arc<FastOperator>) -> Self {
        AcceleratorPlatform {
            op,
            scratch_dots: Vec::new(),
            scratch_cols: Vec::new(),
            scratch_batch_dots: Vec::new(),
            rbuf: Vec::new(),
            batch_rbufs: Vec::new(),
            bank_time_scratch: Vec::new(),
            bank_interrupts_scratch: Vec::new(),
            time: 0.0,
            energy: 0.0,
            last_spmv: SpmvStats::default(),
            spmv_count: 0,
        }
    }

    /// The shared programmed operator behind this session.
    pub fn operator(&self) -> &Arc<FastOperator> {
        &self.op
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.op.config
    }

    /// Number of populated clusters.
    pub fn cluster_count(&self) -> usize {
        self.op.cluster_count()
    }

    /// Non-zeros handled by the local processors.
    pub fn residual_nnz(&self) -> usize {
        self.op.residual_nnz()
    }

    /// Blocking efficiency of the underlying matrix.
    pub fn blocking_efficiency(&self) -> f64 {
        self.op.blocking_efficiency
    }

    /// Statistics of the most recent sparse MVM.
    pub fn last_spmv(&self) -> &SpmvStats {
        &self.last_spmv
    }

    /// Sparse MVMs performed so far by this session.
    pub fn spmv_count(&self) -> u64 {
        self.spmv_count
    }

    /// Total time to program every cluster (see
    /// [`FastOperator::write_time`]).
    pub fn write_time(&self) -> f64 {
        self.op.write_time()
    }

    /// Total programming energy.
    pub fn write_energy(&self) -> f64 {
        self.op.write_energy()
    }

    /// Estimates the vector slices a row needs before its mantissa
    /// settles (§IV-B): the running sum's leading one sits near
    /// `log2 |dot|` above the fixed-point LSB, and accumulation stops
    /// once the remaining-slice bound drops below the mantissa.
    pub fn estimate_row_slices(
        dot: f64,
        exp_base: i32,
        x_exp_base: i32,
        xw: usize,
        pm_bits: i64,
    ) -> usize {
        if xw == 0 {
            return 0;
        }
        let lead = if dot == 0.0 || !dot.is_finite() {
            i64::MIN / 4
        } else {
            dot.abs().log2().floor() as i64 - i64::from(exp_base) - i64::from(x_exp_base)
        };
        let k_stop = lead.saturating_sub(53 + pm_bits + 2).max(0);
        ((xw as i64) - k_stop).clamp(1, xw as i64) as usize
    }

    fn charge_spmv_cost<V: AsRef<[f64]>>(&mut self, x: &[f64], dots: &[V]) {
        // The operator handle is cloned so the (immutable) programmed
        // state can be read while the session's accumulators mutate.
        let op = Arc::clone(&self.op);
        let cost = &op.config.cost;
        let cell = &op.config.cell;
        let mut bank_cluster_time = std::mem::take(&mut self.bank_time_scratch);
        bank_cluster_time.clear();
        bank_cluster_time.resize(op.config.banks, 0.0);
        let mut bank_interrupts = std::mem::take(&mut self.bank_interrupts_scratch);
        bank_interrupts.clear();
        bank_interrupts.resize(op.config.banks, 0);
        let mut energy = 0.0f64;
        let mut total_slices = 0usize;
        let mut max_slices = 0usize;
        let mut conv_done = 0.0f64;
        let mut conv_possible = 0.0f64;
        let telemetry_on = memsci_telemetry::enabled();

        for (ci, cluster) in op.clusters.iter().enumerate() {
            let cluster_dots = dots[ci].as_ref();
            let hi = (cluster.col0 + cluster.size).min(op.n);
            let (x_exp_base, x_mag_bits) = vector_stats(&x[cluster.col0..hi]);
            if x_mag_bits == 0 {
                continue; // all-zero vector section: nothing applied
            }
            let xw = x_mag_bits + 1;
            let mut cluster_max_used = 0usize;
            let mut used_total = 0usize;
            for (ri, (_, _entries)) in cluster.rows.iter().enumerate() {
                let used = Self::estimate_row_slices(
                    cluster_dots[ri],
                    cluster.exp_base,
                    x_exp_base,
                    xw,
                    cluster.pm_bits,
                );
                cluster_max_used = cluster_max_used.max(used);
                used_total += used;
                let conv_energy = cost.column_energy(
                    cluster.size,
                    cell.bits_per_cell,
                    Some(cluster.searched_bits[ri]),
                );
                energy += used as f64 * cluster.groups as f64 * conv_energy;
            }
            // Settled rows idle at base energy for the remaining slices.
            let skipped: usize = cluster
                .rows
                .iter()
                .enumerate()
                .map(|(ri, _)| {
                    let used = Self::estimate_row_slices(
                        cluster_dots[ri],
                        cluster.exp_base,
                        x_exp_base,
                        xw,
                        cluster.pm_bits,
                    );
                    cluster_max_used - used
                })
                .sum();
            energy += skipped as f64 * cluster.groups as f64 * cost.skipped_column_energy();
            conv_done += (used_total * cluster.groups) as f64;
            conv_possible += ((used_total + skipped) * cluster.groups) as f64;
            if telemetry_on {
                // Modelled hardware events, mirroring the bit-exact
                // cluster's flush in `memsci_xbar::Cluster::mvm`.
                use memsci_telemetry::{incr, Counter};
                incr(
                    Counter::AdcConversions,
                    (used_total * cluster.groups) as u64,
                );
                incr(
                    Counter::AdcConversionsSkipped,
                    (skipped * cluster.groups) as u64,
                );
                let resolution = cost.resolution(cluster.size, cell.bits_per_cell);
                let hits: u64 = cluster
                    .rows
                    .iter()
                    .enumerate()
                    .filter(|&(ri, _)| cluster.searched_bits[ri] < resolution)
                    .map(|(ri, _)| {
                        Self::estimate_row_slices(
                            cluster_dots[ri],
                            cluster.exp_base,
                            x_exp_base,
                            xw,
                            cluster.pm_bits,
                        ) as u64
                            * cluster.groups as u64
                    })
                    .sum();
                incr(Counter::AdcHeadstartHits, hits);
                incr(Counter::SlicesApplied, cluster_max_used as u64);
                incr(
                    Counter::SlicesSkipped,
                    xw.saturating_sub(cluster_max_used) as u64,
                );
                incr(
                    Counter::xbar_activations_for_size(cluster.size),
                    cluster_max_used as u64 * cluster.groups as u64,
                );
            }
            let t = cluster_max_used as f64 * cost.crossbar_op_latency(cluster.size);
            bank_cluster_time[cluster.bank] = bank_cluster_time[cluster.bank].max(t);
            bank_interrupts[cluster.bank] += 1;
            total_slices += cluster_max_used;
            max_slices = max_slices.max(cluster_max_used);
        }

        let local = &op.config.local;
        let mut worst_bank = 0.0f64;
        let mut worst_cluster = 0.0f64;
        let mut worst_residual = 0.0f64;
        for bank in 0..op.config.banks {
            let residual_time = local
                .residual_time_split(op.bank_residual_local[bank], op.bank_residual_remote[bank])
                + bank_interrupts[bank] as f64 * local.interrupt_time;
            let bank_time = bank_cluster_time[bank].max(residual_time);
            worst_bank = worst_bank.max(bank_time);
            worst_cluster = worst_cluster.max(bank_cluster_time[bank]);
            worst_residual = worst_residual.max(residual_time);
            energy += local.energy(residual_time);
        }
        let time = worst_bank + op.config.barrier_time;
        energy += op.config.system_static_power * time;

        self.time += time;
        self.energy += energy;
        self.spmv_count += 1;
        let cluster_count = op.clusters.len().max(1);
        self.last_spmv = SpmvStats {
            time,
            energy,
            cluster_time: worst_cluster,
            residual_time: worst_residual,
            avg_slices: total_slices as f64 / cluster_count as f64,
            max_slices,
            skipped_fraction: if conv_possible > 0.0 {
                1.0 - conv_done / conv_possible
            } else {
                0.0
            },
            // Filled in by the caller, which owns the timed section.
            exec: ExecStats::default(),
        };
        self.bank_time_scratch = bank_cluster_time;
        self.bank_interrupts_scratch = bank_interrupts;
    }

    /// Drops every scratch arena so the next kernel starts cold, as if
    /// the platform were freshly built. Results are unaffected — warm
    /// and cold kernels are bit-identical — so this exists for the
    /// benchmark harness and the identity tests, not for correctness.
    pub fn clear_scratch(&mut self) {
        self.scratch_dots = Vec::new();
        self.scratch_cols = Vec::new();
        self.scratch_batch_dots = Vec::new();
        self.rbuf = Vec::new();
        self.batch_rbufs = Vec::new();
        self.bank_time_scratch = Vec::new();
        self.bank_interrupts_scratch = Vec::new();
    }

    fn dense_kernel(&mut self, per_elem_time: impl Fn(usize) -> f64, extra: f64) {
        let op = &self.op;
        let max_elems = op.bank_elems.iter().copied().max().unwrap_or(0);
        let time = per_elem_time(max_elems) + extra;
        let busy: f64 = op
            .bank_elems
            .iter()
            .map(|&e| op.config.local.energy(per_elem_time(e)))
            .sum();
        self.time += time;
        self.energy += busy + op.config.system_static_power * time;
    }
}

/// Bank owning a vector element (1200-element sections, §VI, shrunk so
/// all banks participate on small problems).
fn bank_of_row(row: usize, section: usize, banks: usize) -> usize {
    (row / section) % banks
}

/// Minimum LSB exponent and magnitude width of a vector section:
/// [`memsci_numeric::align::analyze_lossy`], with all-zero (or
/// all-skipped) sections reported as `(0, 0)`.
fn vector_stats(x: &[f64]) -> (i32, usize) {
    match memsci_numeric::align::analyze_lossy(x.iter().copied()) {
        Some(a) => (a.exp_base, a.magnitude_bits),
        None => (0, 0),
    }
}

impl Platform for AcceleratorPlatform {
    fn n(&self) -> usize {
        self.op.n
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        let _span = memsci_telemetry::span("engine/spmv");
        memsci_telemetry::incr(memsci_telemetry::Counter::SpmvOps, 1);
        assert_eq!(x.len(), self.op.n, "x length");
        assert_eq!(y.len(), self.op.n, "y length");
        y.fill(0.0);
        let op = Arc::clone(&self.op);
        let spec = PipelineSpec::from_config(&op.config);
        let n = op.n;
        let clusters = &op.clusters;
        let residual = &op.residual;
        // Cluster lane: per-cluster dot products fan out across worker
        // threads, each task writing only its own reused buffer from
        // the platform's scratch arena. Residual lane: row sums into
        // the reused residual buffer on the digital path. The ordered
        // merge folds clusters (storage order) then residual rows into
        // `y`, so the reduction order never depends on threads or
        // overlap; both arenas travel by value through the lanes and
        // return home afterwards.
        let mut dots_bufs = std::mem::take(&mut self.scratch_dots);
        dots_bufs.resize_with(clusters.len(), Vec::new);
        let mut rbuf = std::mem::take(&mut self.rbuf);
        let (dots, rbuf, exec) = pipeline::run_stages(
            &spec,
            "engine/spmv",
            clusters.len(),
            move |threads| {
                memsci_exec::parallel_map_mut(threads, &mut dots_bufs, |ci, buf| {
                    let cluster = &clusters[ci];
                    buf.clear();
                    buf.reserve(cluster.rows.len());
                    for (_, entries) in &cluster.rows {
                        let mut acc = 0.0;
                        for &(c, v) in entries {
                            acc += v * x[cluster.col0 + c as usize];
                        }
                        buf.push(acc);
                    }
                });
                dots_bufs
            },
            move || {
                rbuf.resize(n, 0.0);
                residual.spmv(x, &mut rbuf);
                memsci_telemetry::incr(
                    memsci_telemetry::Counter::ResidualFlops,
                    2 * residual.nnz() as u64,
                );
                rbuf
            },
            |dots, rbuf| {
                for (cluster, cluster_dots) in clusters.iter().zip(dots) {
                    for ((lr, _), &acc) in cluster.rows.iter().zip(cluster_dots) {
                        y[cluster.row0 + *lr as usize] += acc;
                    }
                }
                for (yr, rv) in y.iter_mut().zip(rbuf) {
                    *yr += rv;
                }
            },
        );
        self.charge_spmv_cost(x, &dots);
        self.last_spmv.exec = exec;
        self.scratch_dots = dots;
        self.rbuf = rbuf;
    }

    fn spmv_batch(&mut self, xs: &[&[f64]], ys: &mut [Vec<f64>]) {
        assert_eq!(xs.len(), ys.len(), "batch rhs/output count mismatch");
        if xs.is_empty() {
            return;
        }
        let k = xs.len();
        let _span = memsci_telemetry::span("engine/spmv_batch");
        memsci_telemetry::incr(memsci_telemetry::Counter::SpmvOps, k as u64);
        let op = Arc::clone(&self.op);
        let n = op.n;
        for x in xs {
            assert_eq!(x.len(), n, "x length");
        }
        for y in ys.iter_mut() {
            y.clear();
            y.resize(n, 0.0);
        }
        let spec = PipelineSpec::from_config(&op.config);
        let clusters = &op.clusters;
        let residual = &op.residual;
        // Same lanes and merge order as `spmv`, hoisted around the
        // batch: the cluster lane fans out once and every shard walks
        // all k vectors against its programmed cluster (plan and
        // scratch stay hot), the residual lane streams the batch
        // through the digital path, and the merge folds each vector in
        // the solo order — clusters in storage order, then residual
        // rows — so batched outputs are bit-identical to k solo calls.
        let mut batch_bufs = std::mem::take(&mut self.scratch_batch_dots);
        batch_bufs.resize_with(clusters.len(), Vec::new);
        for bufs in &mut batch_bufs {
            bufs.resize_with(k, Vec::new);
        }
        let mut rbufs = std::mem::take(&mut self.batch_rbufs);
        rbufs.resize_with(k, Vec::new);
        let (dots, rbufs, exec) = pipeline::run_batch_stages(
            &spec,
            "engine/spmv_batch",
            clusters.len(),
            k,
            move |threads| {
                memsci_exec::parallel_map_mut(threads, &mut batch_bufs, |ci, bufs| {
                    let cluster = &clusters[ci];
                    for (x, buf) in xs.iter().zip(bufs.iter_mut()) {
                        buf.clear();
                        buf.reserve(cluster.rows.len());
                        for (_, entries) in &cluster.rows {
                            let mut acc = 0.0;
                            for &(c, v) in entries {
                                acc += v * x[cluster.col0 + c as usize];
                            }
                            buf.push(acc);
                        }
                    }
                });
                batch_bufs
            },
            move || {
                for (x, rbuf) in xs.iter().zip(rbufs.iter_mut()) {
                    rbuf.resize(n, 0.0);
                    residual.spmv(x, rbuf);
                    memsci_telemetry::incr(
                        memsci_telemetry::Counter::ResidualFlops,
                        2 * residual.nnz() as u64,
                    );
                }
                rbufs
            },
            |dots, rbufs| {
                for (j, y) in ys.iter_mut().enumerate() {
                    for (cluster, cluster_bufs) in clusters.iter().zip(dots) {
                        for ((lr, _), &acc) in cluster.rows.iter().zip(&cluster_bufs[j]) {
                            y[cluster.row0 + *lr as usize] += acc;
                        }
                    }
                    for (yr, rv) in y.iter_mut().zip(&rbufs[j]) {
                        *yr += rv;
                    }
                }
            },
        );
        // Cost accounting runs per vector in batch order, so modelled
        // time/energy and the hardware counters accumulate in the same
        // float order as k sequential kernels.
        for (j, x) in xs.iter().enumerate() {
            let dots_j: Vec<&[f64]> = dots.iter().map(|bufs| bufs[j].as_slice()).collect();
            self.charge_spmv_cost(x, &dots_j);
        }
        self.last_spmv.exec = exec;
        self.scratch_batch_dots = dots;
        self.batch_rbufs = rbufs;
    }

    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]) {
        let _span = memsci_telemetry::span("engine/spmv_transpose");
        memsci_telemetry::incr(memsci_telemetry::Counter::SpmvTransposeOps, 1);
        assert_eq!(x.len(), self.op.n, "x length");
        assert_eq!(y.len(), self.op.n, "y length");
        y.fill(0.0);
        let op = Arc::clone(&self.op);
        let spec = PipelineSpec::from_config(&op.config);
        let n = op.n;
        let clusters = &op.clusters;
        let residual_t = &op.residual_t;
        // Functional transpose; cost modelled as a forward MVM over the
        // mirrored mapping (a deployment would program Aᵀ). Each
        // cluster scatters into its reused column buffer over its own
        // column range, merged serially in storage order.
        let mut cols_bufs = std::mem::take(&mut self.scratch_cols);
        cols_bufs.resize_with(clusters.len(), Vec::new);
        let mut rbuf = std::mem::take(&mut self.rbuf);
        let (cols, rbuf, exec) = pipeline::run_stages(
            &spec,
            "engine/spmv_transpose",
            clusters.len(),
            move |threads| {
                memsci_exec::parallel_map_mut(threads, &mut cols_bufs, |ci, buf| {
                    let cluster = &clusters[ci];
                    buf.clear();
                    buf.resize(cluster.size, 0.0);
                    for (lr, entries) in &cluster.rows {
                        let xv = x[cluster.row0 + *lr as usize];
                        if xv != 0.0 {
                            for &(c, v) in entries {
                                buf[c as usize] += v * xv;
                            }
                        }
                    }
                });
                cols_bufs
            },
            move || {
                rbuf.resize(n, 0.0);
                residual_t.spmv(x, &mut rbuf);
                memsci_telemetry::incr(
                    memsci_telemetry::Counter::ResidualFlops,
                    2 * residual_t.nnz() as u64,
                );
                rbuf
            },
            |cols, rbuf| {
                for (cluster, cluster_cols) in clusters.iter().zip(cols) {
                    for (c, &v) in cluster_cols.iter().enumerate() {
                        if v != 0.0 {
                            y[cluster.col0 + c] += v;
                        }
                    }
                }
                for (yr, rv) in y.iter_mut().zip(rbuf) {
                    *yr += rv;
                }
            },
        );
        // Approximate transpose dots by forward magnitudes for costing,
        // using the operator's precomputed all-ones estimate.
        self.charge_spmv_cost(x, &op.dots_est);
        self.last_spmv.exec = exec;
        self.scratch_cols = cols;
        self.rbuf = rbuf;
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        memsci_telemetry::incr(memsci_telemetry::Counter::DotOps, 1);
        let reduce = self.op.config.local.global_reduce_time;
        let local = self.op.config.local;
        self.dense_kernel(|e| local.dot_time(e), reduce);
        dot_f64(x, y)
    }

    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        memsci_telemetry::incr(memsci_telemetry::Counter::AxpbyOps, 1);
        let barrier = self.op.config.barrier_time;
        let local = self.op.config.local;
        self.dense_kernel(|e| local.axpy_time(e), barrier);
        axpby_f64(alpha, x, beta, y);
    }

    fn diagonal(&self) -> Arc<[f64]> {
        self.op.diagonal()
    }

    fn elapsed_seconds(&self) -> f64 {
        self.time
    }

    fn energy_joules(&self) -> f64 {
        self.energy
    }
}

/// Convenience: blocks, maps, and wraps a CSR matrix in one call.
///
/// # Examples
///
/// ```
/// use memsci_core::engine::accelerate;
/// use memsci_core::AcceleratorConfig;
/// use memsci_solvers::platform::Platform;
/// use memsci_sparse::generate::poisson2d;
///
/// let mut acc = accelerate(&poisson2d(32, 32), AcceleratorConfig::default());
/// let x = vec![1.0; 1024];
/// let mut y = vec![0.0; 1024];
/// acc.spmv(&x, &mut y);
/// assert!(acc.elapsed_seconds() > 0.0);
/// ```
pub fn accelerate(matrix: &Csr, config: AcceleratorConfig) -> AcceleratorPlatform {
    let blocked = BlockedMatrix::block(matrix, &memsci_sparse::BlockingConfig::default());
    AcceleratorPlatform::new(&blocked, config)
}

/// Builds a platform directly from COO triplets (test helper).
pub fn accelerate_coo(coo: &Coo, config: AcceleratorConfig) -> AcceleratorPlatform {
    accelerate(&coo.to_csr(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::generate::{banded, poisson2d, ValueModel};
    use memsci_sparse::BlockingConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    #[test]
    fn spmv_matches_csr_reference() {
        let a = banded(600, 12, 0.7, ValueModel::with_spread(10), &mut rng()).to_csr();
        let mut acc = accelerate(&a, AcceleratorConfig::with_banks(4));
        let x: Vec<f64> = (0..600).map(|i| (i as f64 * 0.11).sin() * 2.0).collect();
        let mut y1 = vec![0.0; 600];
        let mut y2 = vec![0.0; 600];
        acc.spmv(&x, &mut y1);
        a.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "{u} vs {v}");
        }
    }

    #[test]
    fn parallel_spmv_is_bit_identical_to_serial() {
        let a = banded(700, 14, 0.7, ValueModel::with_spread(12), &mut rng()).to_csr();
        let x: Vec<f64> = (0..700).map(|i| (i as f64 * 0.19).sin() * 3.0).collect();
        let mut serial_cfg = AcceleratorConfig::with_banks(4);
        serial_cfg.threads = Some(1);
        let mut acc = accelerate(&a, serial_cfg);
        let mut y_serial = vec![0.0; 700];
        acc.spmv(&x, &mut y_serial);
        let (t_serial, e_serial) = (acc.elapsed_seconds(), acc.energy_joules());
        for threads in [2, 3, 8] {
            let mut cfg = AcceleratorConfig::with_banks(4);
            cfg.threads = Some(threads);
            let mut acc = accelerate(&a, cfg);
            let mut y = vec![0.0; 700];
            acc.spmv(&x, &mut y);
            for (u, v) in y.iter().zip(&y_serial) {
                assert_eq!(u.to_bits(), v.to_bits(), "threads={threads}");
            }
            // The modelled cost is a pure function of the inputs too.
            assert_eq!(acc.elapsed_seconds().to_bits(), t_serial.to_bits());
            assert_eq!(acc.energy_joules().to_bits(), e_serial.to_bits());
            let exec = acc.last_spmv().exec;
            assert_eq!(exec.threads, threads);
            assert!(exec.tasks > 0 && exec.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn overlap_and_threads_are_bit_identical() {
        let a = banded(700, 14, 0.7, ValueModel::with_spread(12), &mut rng()).to_csr();
        let x: Vec<f64> = (0..700).map(|i| (i as f64 * 0.19).sin() * 3.0).collect();
        let mut reference: Option<(Vec<u64>, Vec<u64>, u64, u64)> = None;
        for overlap in [false, true] {
            for threads in [1, 2, 4] {
                let mut cfg = AcceleratorConfig::with_banks(4);
                cfg.threads = Some(threads);
                cfg.overlap = Some(overlap);
                let mut acc = accelerate(&a, cfg);
                let mut y = vec![0.0; 700];
                acc.spmv(&x, &mut y);
                let mut yt = vec![0.0; 700];
                acc.spmv_transpose(&x, &mut yt);
                let got = (
                    y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                    yt.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                    acc.elapsed_seconds().to_bits(),
                    acc.energy_joules().to_bits(),
                );
                match &reference {
                    None => reference = Some(got),
                    Some(want) => {
                        assert_eq!(&got, want, "threads={threads} overlap={overlap}");
                    }
                }
            }
        }
    }

    #[test]
    fn transpose_matches_csr_reference() {
        let a = banded(300, 10, 0.6, ValueModel::with_spread(8), &mut rng()).to_csr();
        let mut acc = accelerate(&a, AcceleratorConfig::with_banks(4));
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut y1 = vec![0.0; 300];
        let mut y2 = vec![0.0; 300];
        acc.spmv_transpose(&x, &mut y1);
        a.spmv_transpose(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0), "{u} vs {v}");
        }
    }

    #[test]
    fn diagonal_combines_blocks_and_residual() {
        let a = poisson2d(24, 24);
        let acc = accelerate(&a, AcceleratorConfig::with_banks(2));
        assert_eq!(&*acc.diagonal(), a.diagonal().as_slice());
    }

    #[test]
    fn diagonal_is_precomputed_and_shared() {
        // The diagonal comes from the operator, assembled at program
        // time: repeated calls hand out views of the same allocation,
        // bitwise equal to the recomputed reference.
        let a = banded(300, 9, 0.7, ValueModel::with_spread(7), &mut rng()).to_csr();
        let acc = accelerate(&a, AcceleratorConfig::with_banks(3));
        let d1 = acc.diagonal();
        let d2 = acc.diagonal();
        assert!(
            std::sync::Arc::ptr_eq(&d1, &d2),
            "diagonal must be shared, not rebuilt"
        );
        let want = a.diagonal();
        assert_eq!(d1.len(), want.len());
        for (u, v) in d1.iter().zip(&want) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn sessions_share_one_operator_bitwise() {
        // Two sessions over one programmed operator produce the same
        // bits (outputs and modelled cost) as a freshly-built platform.
        let a = banded(500, 11, 0.7, ValueModel::with_spread(9), &mut rng()).to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let config = AcceleratorConfig::with_banks(4);
        let mut fresh = AcceleratorPlatform::new(&blocked, config.clone());
        let op = std::sync::Arc::clone(fresh.operator());
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.13).sin() * 2.0).collect();
        let mut y_fresh = vec![0.0; 500];
        fresh.spmv(&x, &mut y_fresh);
        for _ in 0..2 {
            let mut session = AcceleratorPlatform::from_operator(std::sync::Arc::clone(&op));
            let mut y = vec![0.0; 500];
            session.spmv(&x, &mut y);
            for (u, v) in y.iter().zip(&y_fresh) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
            assert_eq!(
                session.elapsed_seconds().to_bits(),
                fresh.elapsed_seconds().to_bits()
            );
            assert_eq!(
                session.energy_joules().to_bits(),
                fresh.energy_joules().to_bits()
            );
        }
    }

    #[test]
    fn costs_accumulate_and_report() {
        let a = banded(800, 16, 0.8, ValueModel::with_spread(6), &mut rng()).to_csr();
        let mut acc = accelerate(&a, AcceleratorConfig::with_banks(8));
        assert!(acc.cluster_count() > 0);
        let x = vec![1.0; 800];
        let mut y = vec![0.0; 800];
        acc.spmv(&x, &mut y);
        let s = *acc.last_spmv();
        assert!(s.time > 0.0 && s.energy > 0.0);
        assert!(s.max_slices >= 1);
        assert!(s.avg_slices <= s.max_slices as f64);
        assert_eq!(acc.spmv_count(), 1);
        let t1 = acc.elapsed_seconds();
        acc.spmv(&x, &mut y);
        assert!(acc.elapsed_seconds() > t1);
        // Dense kernels also cost time.
        let before = acc.elapsed_seconds();
        acc.dot(&x, &y);
        assert!(acc.elapsed_seconds() > before);
    }

    #[test]
    fn early_termination_saves_conversions() {
        let a = banded(512, 20, 0.9, ValueModel::with_spread(4), &mut rng()).to_csr();
        let mut acc = accelerate(&a, AcceleratorConfig::with_banks(4));
        // A wide-dynamic-range vector: most rows settle long before the
        // least significant slices.
        let x: Vec<f64> = (0..512)
            .map(|i| (2.0f64).powi((i % 10) * 6 - 30) * (1.0 + i as f64 * 0.01))
            .collect();
        let mut y = vec![0.0; 512];
        acc.spmv(&x, &mut y);
        assert!(
            acc.last_spmv().skipped_fraction > 0.0,
            "skipped {}",
            acc.last_spmv().skipped_fraction
        );
    }

    #[test]
    fn write_costs_are_positive_for_mapped_matrices() {
        let a = banded(512, 16, 0.9, ValueModel::with_spread(6), &mut rng()).to_csr();
        let acc = accelerate(&a, AcceleratorConfig::with_banks(4));
        assert!(acc.write_time() > 0.0);
        assert!(acc.write_energy() > 0.0);
    }

    #[test]
    fn unblockable_matrices_run_on_the_local_processors() {
        let a = memsci_sparse::generate::uniform_random(
            1024,
            4096,
            ValueModel::with_spread(8),
            &mut rng(),
        )
        .to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let mut acc = AcceleratorPlatform::new(&blocked, AcceleratorConfig::with_banks(4));
        assert_eq!(acc.cluster_count(), 0);
        assert_eq!(acc.residual_nnz(), a.nnz());
        let x = vec![1.0; 1024];
        let mut y1 = vec![0.0; 1024];
        let mut y2 = vec![0.0; 1024];
        acc.spmv(&x, &mut y1);
        a.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
        assert!(acc.last_spmv().residual_time > 0.0);
    }

    #[test]
    fn slice_estimate_behaviour() {
        // Large dot values settle quickly; tiny ones consume all slices.
        let big = AcceleratorPlatform::estimate_row_slices(1e20, -60, -60, 100, 60);
        let small = AcceleratorPlatform::estimate_row_slices(1e-30, -60, -60, 100, 60);
        assert!(big < small);
        assert_eq!(small, 100);
        assert_eq!(
            AcceleratorPlatform::estimate_row_slices(0.0, 0, 0, 50, 60),
            50
        );
        assert_eq!(
            AcceleratorPlatform::estimate_row_slices(1.0, 0, 0, 0, 60),
            0
        );
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use memsci_sparse::{BlockingConfig, Csr};

    #[test]
    fn empty_matrix_is_harmless() {
        let a = Csr::empty(16, 16);
        let mut acc = accelerate(&a, AcceleratorConfig::with_banks(2));
        assert_eq!(acc.cluster_count(), 0);
        assert_eq!(acc.residual_nnz(), 0);
        let x = vec![1.0; 16];
        let mut y = vec![9.0; 16];
        acc.spmv(&x, &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
        assert!(acc.elapsed_seconds() > 0.0); // barrier still charged
    }

    #[test]
    fn identity_matrix_runs_on_the_residual_path() {
        let a = Csr::identity(100);
        let blocked = memsci_sparse::BlockedMatrix::block(&a, &BlockingConfig::default());
        let mut acc = AcceleratorPlatform::new(&blocked, AcceleratorConfig::with_banks(4));
        // A diagonal of 100 entries never reaches block density.
        assert_eq!(acc.residual_nnz(), 100);
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut y = vec![0.0; 100];
        acc.spmv(&x, &mut y);
        assert_eq!(y, x);
        assert_eq!(&*acc.diagonal(), &[1.0; 100][..]);
    }

    #[test]
    fn effective_sections_engage_every_bank() {
        let config = AcceleratorConfig::default();
        // Small problem: sections shrink so all banks get elements.
        assert_eq!(config.effective_section(128 * 10), 10);
        // Large problem: the Table I section size caps.
        assert_eq!(config.effective_section(1_000_000), 1200);
        assert_eq!(config.effective_section(1), 1);
    }

    #[test]
    fn single_bank_configuration_works() {
        let a = memsci_sparse::generate::poisson2d(16, 16);
        let mut acc = accelerate(&a, AcceleratorConfig::with_banks(1));
        let x = vec![1.0; 256];
        let mut y = vec![0.0; 256];
        acc.spmv(&x, &mut y);
        let mut want = vec![0.0; 256];
        a.spmv(&x, &mut want);
        assert_eq!(y, want);
    }
}
