//! The memristive scientific-computing accelerator.
//!
//! This crate assembles the primary contribution of *Enabling
//! Scientific Computing on Memristive Accelerators* (ISCA 2018) on top
//! of the substrate crates:
//!
//! * [`config`] — the Table I system (128 banks × heterogeneous
//!   512/256/128/64 clusters, LEON3-class local processors);
//! * [`mapping`] — capacity-aware placement of blocked matrices onto
//!   the cluster inventory;
//! * [`engine`] — the fast platform: functional kernels with the
//!   early-termination/headstart/CIC cost models (drives Figures 8–10);
//! * [`exact`] — the bit-exact platform built from real cluster
//!   simulations (drives Figures 12–13 and precision validation);
//! * [`overhead`] — preprocessing/write overheads and endurance
//!   (§VIII-D/E);
//! * [`area`] — the 539 mm² system area model (§VIII-C);
//! * [`dispatch`] — the accelerator-vs-GPU decision (§VIII-A);
//! * [`multi`] — row-striped execution across several accelerators
//!   (§VI);
//! * [`pipeline`] — the staged SpMV skeleton (decompose → program →
//!   cluster-MVM → residual-CSR → ordered merge) every platform's
//!   kernels run through, with per-stage spans and the
//!   `MEMSCI_OVERLAP` lane-overlap knob;
//! * [`service`] — shareable programmed operators: the
//!   fingerprint-keyed operator cache and concurrent solve sessions
//!   over one cached operator.
//!
//! Every engine is split into an immutable programmed *operator*
//! ([`engine::FastOperator`], [`exact::ExactOperator`],
//! [`multi::MultiOperator`]; `Send + Sync`, shared behind `Arc`) and a
//! per-solve *session* (the `*Platform` types) owning scratch arenas,
//! noise streams and cost accumulators. Programming happens once per
//! operator; sessions are cheap and bit-identical to a fresh build.
//!
//! # Examples
//!
//! Solve a Poisson system on the accelerator and inspect the model cost:
//!
//! ```
//! use memsci_core::engine::accelerate;
//! use memsci_core::AcceleratorConfig;
//! use memsci_solvers::cg::cg;
//! use memsci_solvers::report::SolveOptions;
//! use memsci_sparse::generate::poisson2d;
//!
//! let a = poisson2d(24, 24);
//! let mut acc = accelerate(&a, AcceleratorConfig::default());
//! let b = vec![1.0; a.rows()];
//! let mut x = vec![0.0; a.rows()];
//! let report = cg(&mut acc, &b, &mut x, &SolveOptions::default());
//! assert!(report.converged);
//! assert!(report.time_seconds > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod config;
pub mod dispatch;
pub mod engine;
pub mod exact;
pub mod mapping;
pub mod multi;
pub mod overhead;
pub mod pipeline;
pub mod service;

pub use config::{AcceleratorConfig, LocalTimings};
pub use dispatch::Target;
pub use engine::{accelerate, AcceleratorPlatform, FastOperator, SpmvStats};
pub use exact::{ExactAcceleratorPlatform, ExactOperator, ExactOptions};
pub use mapping::{map_blocks, ClusterLoad, Mapping, VectorMapEntry};
pub use memsci_exec as exec;
pub use memsci_exec::ExecStats;
pub use memsci_telemetry as telemetry;
pub use multi::{MultiAcceleratorPlatform, MultiOperator};
pub use overhead::SetupCost;
pub use pipeline::PipelineSpec;
pub use service::{
    solve_concurrent, ConcurrentOutcome, ConcurrentSolve, EngineSpec, OperatorCache,
    SessionPlatform, SharedOperator,
};
