//! Capacity-aware assignment of matrix blocks to clusters.
//!
//! The blocking preprocessor (§V-B1) decides block *sizes*; this module
//! places the blocks onto the finite cluster inventory of Table I.
//! Blocks spread round-robin across banks. When one size is
//! oversubscribed, blocks sharing a parent tile merge upward into a free
//! larger cluster (re-checking the exponent-range constraint), and
//! oversized overflow splits downward into quadrants; elements that
//! still cannot be placed fall back to the local processors' residual
//! path, preserving the paper's program-once operation (§VIII-E).

use std::collections::BTreeMap;

use memsci_sparse::blocking::exponent_window_partition;
use memsci_sparse::BlockedMatrix;

use crate::config::AcceleratorConfig;

/// The contents assigned to one physical cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterLoad {
    /// Hosting bank.
    pub bank: usize,
    /// Cluster (and content tile) edge.
    pub size: u32,
    /// Global row of the tile origin.
    pub row0: u32,
    /// Global column of the tile origin.
    pub col0: u32,
    /// Entries in tile-local coordinates.
    pub entries: Vec<(u16, u16, f64)>,
}

impl ClusterLoad {
    /// Non-zeros mapped to this cluster.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

/// Result of mapping a blocked matrix onto the cluster inventory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mapping {
    /// Populated clusters.
    pub clusters: Vec<ClusterLoad>,
    /// Entries (global coordinates) pushed to the residual path by
    /// capacity overflow or merge-time exponent evictions.
    pub extra_residual: Vec<(u32, u32, f64)>,
    /// Blocks merged upward into larger clusters.
    pub merged_up: usize,
    /// Blocks split downward into quadrants.
    pub split_down: usize,
}

impl Mapping {
    /// Non-zeros held by clusters.
    pub fn mapped_nnz(&self) -> usize {
        self.clusters.iter().map(ClusterLoad::nnz).sum()
    }

    /// Builds the per-bank vector maps of §VI-A1: for every cluster on a
    /// bank, the tuple of (input-buffer base address, vector element
    /// index, cluster size). Entries are ordered largest cluster first,
    /// because larger clusters have higher latency and are started
    /// first.
    pub fn vector_maps(&self, banks: usize) -> Vec<Vec<VectorMapEntry>> {
        let mut maps: Vec<Vec<VectorMapEntry>> = vec![Vec::new(); banks];
        let mut next_base: Vec<u32> = vec![0; banks];
        // Sort cluster indices by (bank, descending size) for the
        // start-large-first ordering.
        let mut order: Vec<usize> = (0..self.clusters.len()).collect();
        order.sort_by_key(|&i| {
            let c = &self.clusters[i];
            (c.bank, core::cmp::Reverse(c.size), c.row0, c.col0)
        });
        for i in order {
            let c = &self.clusters[i];
            let entry = VectorMapEntry {
                buffer_base: next_base[c.bank],
                vector_index: c.col0,
                size: c.size,
            };
            next_base[c.bank] += c.size;
            maps[c.bank].push(entry);
        }
        maps
    }
}

/// One vector-map tuple (§VI-A1): where a cluster's contiguous input
/// vector section lives in the bank's SRAM buffer, which global vector
/// element it starts at, and how long it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorMapEntry {
    /// Base address (in elements) within the bank's input vector buffer.
    pub buffer_base: u32,
    /// Global index of the first vector element the cluster consumes.
    pub vector_index: u32,
    /// Cluster size (length of the contiguous section).
    pub size: u32,
}

#[derive(Debug, Clone)]
struct PendingBlock {
    row0: u32,
    col0: u32,
    entries: Vec<(u16, u16, f64)>,
}

/// Maps the blocks of a [`BlockedMatrix`] onto the configured cluster
/// inventory.
///
/// # Panics
///
/// Panics if a block's size does not appear in the configuration.
pub fn map_blocks(blocked: &BlockedMatrix, config: &AcceleratorConfig) -> Mapping {
    let sizes = config.sizes(); // descending
    let max_spread =
        (memsci_numeric::align::MAX_MAGNITUDE_BITS - memsci_numeric::align::MANTISSA_BITS) as i32;
    let mut pending: BTreeMap<u32, Vec<PendingBlock>> = BTreeMap::new();
    for s in &sizes {
        pending.insert(*s as u32, Vec::new());
    }
    for b in &blocked.blocks {
        pending
            .get_mut(&b.size)
            .unwrap_or_else(|| panic!("block size {} not in the configuration", b.size))
            .push(PendingBlock {
                row0: b.row0,
                col0: b.col0,
                entries: b.entries.clone(),
            });
    }

    let mut out = Mapping::default();

    // Upward merge: relieve oversubscribed small sizes by fusing blocks
    // that share a parent tile into the next size up.
    let ascending: Vec<u32> = sizes.iter().rev().map(|&s| s as u32).collect();
    for w in 0..ascending.len().saturating_sub(1) {
        let s = ascending[w];
        let parent = ascending[w + 1];
        let cap = config.cluster_capacity(s as usize);
        let have = pending[&s].len();
        if have <= cap {
            continue;
        }
        let mut excess = have - cap;
        // Group this size's blocks by parent tile; merge the largest
        // groups first (they relieve the most pressure per new cluster).
        let blocks = pending.remove(&s).unwrap();
        let mut groups: BTreeMap<(u32, u32), Vec<PendingBlock>> = BTreeMap::new();
        for b in blocks {
            groups
                .entry((b.row0 / parent, b.col0 / parent))
                .or_default()
                .push(b);
        }
        let mut ordered: Vec<((u32, u32), Vec<PendingBlock>)> = groups.into_iter().collect();
        ordered.sort_by_key(|(key, group)| (usize::MAX - group.len(), *key));
        let mut keep = Vec::new();
        for ((pr, pc), group) in ordered {
            if excess == 0 {
                keep.extend(group);
                continue;
            }
            excess = excess.saturating_sub(group.len());
            out.merged_up += group.len();
            let merged = merge_group(pr * parent, pc * parent, &group, max_spread, &mut out);
            pending.get_mut(&parent).unwrap().push(merged);
        }
        pending.insert(s, keep);
    }

    // Downward assignment: place blocks, splitting overflow into
    // quadrants for the next smaller size.
    let mut next_instance: BTreeMap<u32, usize> = BTreeMap::new();
    for (idx, &s) in sizes.iter().enumerate() {
        let s = s as u32;
        let cap = config.cluster_capacity(s as usize);
        let blocks = pending.remove(&s).unwrap_or_default();
        for b in blocks {
            let used = next_instance.entry(s).or_insert(0);
            if *used < cap {
                let bank = *used % config.banks;
                *used += 1;
                out.clusters.push(ClusterLoad {
                    bank,
                    size: s,
                    row0: b.row0,
                    col0: b.col0,
                    entries: b.entries,
                });
            } else if idx + 1 < sizes.len() {
                out.split_down += 1;
                let half = s / 2;
                let mut quadrants: BTreeMap<(u32, u32), PendingBlock> = BTreeMap::new();
                for (r, c, v) in b.entries {
                    let (qr, qc) = (u32::from(r) / half, u32::from(c) / half);
                    let q = quadrants.entry((qr, qc)).or_insert_with(|| PendingBlock {
                        row0: b.row0 + qr * half,
                        col0: b.col0 + qc * half,
                        entries: Vec::new(),
                    });
                    q.entries.push((
                        (u32::from(r) - qr * half) as u16,
                        (u32::from(c) - qc * half) as u16,
                        v,
                    ));
                }
                pending
                    .entry(half)
                    .or_default()
                    .extend(quadrants.into_values());
            } else {
                for (r, c, v) in b.entries {
                    out.extra_residual
                        .push((b.row0 + u32::from(r), b.col0 + u32::from(c), v));
                }
            }
        }
    }
    out
}

/// Picks the least-worn bank from a per-bank endurance-write tally,
/// breaking ties toward the lowest index so repair placement stays
/// deterministic. Used by the reprogram-and-retry path to steer repairs
/// away from banks that have already absorbed many writes.
///
/// # Panics
///
/// Panics if `wear` is empty.
pub fn least_worn_bank(wear: &[u64]) -> usize {
    assert!(!wear.is_empty(), "wear table must cover at least one bank");
    let mut best = 0;
    for (bank, &w) in wear.iter().enumerate().skip(1) {
        if w < wear[best] {
            best = bank;
        }
    }
    best
}

fn merge_group(
    row0: u32,
    col0: u32,
    group: &[PendingBlock],
    max_spread: i32,
    out: &mut Mapping,
) -> PendingBlock {
    let mut entries: Vec<(u16, u16, f64)> = Vec::new();
    for b in group {
        for &(r, c, v) in &b.entries {
            entries.push((
                (b.row0 - row0 + u32::from(r)) as u16,
                (b.col0 - col0 + u32::from(c)) as u16,
                v,
            ));
        }
    }
    // Merged blocks may combine incompatible exponent ranges: keep the
    // largest alignable subset, evict the rest to the residual path.
    let values: Vec<f64> = entries.iter().map(|&(_, _, v)| v).collect();
    let (kept, evicted) = exponent_window_partition(&values, max_spread);
    for &i in &evicted {
        let (r, c, v) = entries[i];
        out.extra_residual
            .push((row0 + u32::from(r), col0 + u32::from(c), v));
    }
    let entries: Vec<(u16, u16, f64)> = kept.into_iter().map(|i| entries[i]).collect();
    PendingBlock {
        row0,
        col0,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::blocking::BlockingConfig;
    use memsci_sparse::generate::{banded, ValueModel};
    use memsci_sparse::{BlockedMatrix, Coo};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn block(m: &memsci_sparse::Csr) -> BlockedMatrix {
        BlockedMatrix::block(m, &BlockingConfig::default())
    }

    fn total_nnz(mapping: &Mapping) -> usize {
        mapping.mapped_nnz() + mapping.extra_residual.len()
    }

    #[test]
    fn vector_maps_are_ordered_largest_first() {
        let a = banded(3000, 24, 0.8, ValueModel::with_spread(8), &mut rng()).to_csr();
        let blocked = block(&a);
        let config = AcceleratorConfig::with_banks(4);
        let mapping = map_blocks(&blocked, &config);
        let maps = mapping.vector_maps(config.banks);
        assert_eq!(maps.len(), 4);
        let mut total_entries = 0;
        for bank_map in &maps {
            // Descending cluster sizes within each bank.
            for w in bank_map.windows(2) {
                assert!(w[0].size >= w[1].size);
            }
            // Buffer sections are packed contiguously.
            let mut expect_base = 0;
            for e in bank_map {
                assert_eq!(e.buffer_base, expect_base);
                expect_base += e.size;
            }
            total_entries += bank_map.len();
        }
        assert_eq!(total_entries, mapping.clusters.len());
    }

    #[test]
    fn mapping_conserves_entries() {
        let a = banded(1500, 20, 0.8, ValueModel::with_spread(10), &mut rng()).to_csr();
        let blocked = block(&a);
        let mapping = map_blocks(&blocked, &AcceleratorConfig::default());
        assert_eq!(total_nnz(&mapping), blocked.stats.nnz_blocked);
    }

    #[test]
    fn banks_are_balanced() {
        let a = banded(4000, 24, 0.8, ValueModel::with_spread(8), &mut rng()).to_csr();
        let blocked = block(&a);
        let config = AcceleratorConfig::with_banks(4);
        let mapping = map_blocks(&blocked, &config);
        let mut per_bank = vec![0usize; 4];
        for c in &mapping.clusters {
            per_bank[c.bank] += 1;
        }
        let max = per_bank.iter().max().unwrap();
        let min = per_bank.iter().min().unwrap();
        assert!(max - min <= 4, "per-bank loads {per_bank:?}");
    }

    #[test]
    fn oversubscription_merges_upward() {
        // A tiny 1-bank config with very few 64-clusters and free 128s.
        let mut config = AcceleratorConfig::with_banks(1);
        config.clusters_per_bank = vec![(128, 8), (64, 2)];
        // Many adjacent dense 64-tiles.
        let n = 64 * 12;
        let mut coo = Coo::new(n, n);
        for t in 0..12usize {
            for r in 0..64usize {
                for c in 0..64usize {
                    if (r + c) % 2 == 0 {
                        coo.push(t * 64 + r, t * 64 + c, 1.0 + r as f64).unwrap();
                    }
                }
            }
        }
        let a = coo.to_csr();
        let bc = BlockingConfig {
            block_sizes: vec![64],
            ..Default::default()
        };
        let blocked = BlockedMatrix::block(&a, &bc);
        assert!(blocked.blocks.iter().all(|b| b.size == 64));
        assert!(blocked.blocks.len() > 2);
        let mapping = map_blocks(&blocked, &config);
        assert!(mapping.merged_up > 0, "expected upward merges");
        assert!(mapping.clusters.iter().any(|c| c.size == 128));
        assert_eq!(total_nnz(&mapping), blocked.stats.nnz_blocked);
        // Capacity respected.
        assert!(mapping.clusters.iter().filter(|c| c.size == 64).count() <= 2);
        assert!(mapping.clusters.iter().filter(|c| c.size == 128).count() <= 8);
    }

    #[test]
    fn oversubscribed_large_blocks_split_downward() {
        let mut config = AcceleratorConfig::with_banks(1);
        config.clusters_per_bank = vec![(512, 1), (256, 8)];
        // Two dense 512-tiles; only one 512-cluster.
        let n = 1024;
        let mut coo = Coo::new(n, n);
        for t in 0..2usize {
            for r in 0..512usize {
                for c in (0..512).step_by(7) {
                    coo.push(t * 512 + r, t * 512 + c, 2.0).unwrap();
                }
            }
        }
        let a = coo.to_csr();
        let bc = BlockingConfig {
            block_sizes: vec![512, 256],
            ..Default::default()
        };
        let blocked = BlockedMatrix::block(&a, &bc);
        assert_eq!(blocked.blocks.len(), 2);
        let mapping = map_blocks(&blocked, &config);
        assert_eq!(mapping.split_down, 1);
        assert_eq!(mapping.clusters.iter().filter(|c| c.size == 512).count(), 1);
        assert_eq!(mapping.clusters.iter().filter(|c| c.size == 256).count(), 4);
        assert_eq!(total_nnz(&mapping), blocked.stats.nnz_blocked);
    }

    #[test]
    fn total_overflow_goes_to_residual() {
        let mut config = AcceleratorConfig::with_banks(1);
        config.clusters_per_bank = vec![(64, 1)];
        let n = 192;
        let mut coo = Coo::new(n, n);
        for t in 0..3usize {
            for r in 0..64usize {
                for c in 0..64usize {
                    coo.push(t * 64 + r, t * 64 + c, 1.0).unwrap();
                }
            }
        }
        let bc = BlockingConfig {
            block_sizes: vec![64],
            ..Default::default()
        };
        let blocked = BlockedMatrix::block(&coo.to_csr(), &bc);
        assert_eq!(blocked.blocks.len(), 3);
        let mapping = map_blocks(&blocked, &config);
        assert_eq!(mapping.clusters.len(), 1);
        assert_eq!(mapping.extra_residual.len(), 2 * 64 * 64);
        assert_eq!(total_nnz(&mapping), blocked.stats.nnz_blocked);
    }

    #[test]
    fn least_worn_bank_prefers_minimum_then_lowest_index() {
        assert_eq!(least_worn_bank(&[3]), 0);
        assert_eq!(least_worn_bank(&[5, 2, 9, 2]), 1); // tie → lowest index
        assert_eq!(least_worn_bank(&[0, 0, 0]), 0);
        assert_eq!(least_worn_bank(&[7, 6, 5, 4]), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn least_worn_bank_rejects_empty_table() {
        least_worn_bank(&[]);
    }

    #[test]
    fn merge_evicts_range_violations() {
        let mut config = AcceleratorConfig::with_banks(1);
        config.clusters_per_bank = vec![(128, 4), (64, 1)];
        // Two adjacent dense 64-tiles with wildly different exponents:
        // merging must evict one side.
        let n = 128;
        let mut coo = Coo::new(n, n);
        for r in 0..64usize {
            for c in 0..64usize {
                coo.push(r, c, 1.0).unwrap();
                coo.push(64 + r, 64 + c, 1e260).unwrap();
            }
        }
        let bc = BlockingConfig {
            block_sizes: vec![64],
            ..Default::default()
        };
        let blocked = BlockedMatrix::block(&coo.to_csr(), &bc);
        assert_eq!(blocked.blocks.len(), 2);
        let mapping = map_blocks(&blocked, &config);
        // One block stays on the 64-cluster; the other merges up alone
        // or both merge — in every case all entries are conserved.
        assert_eq!(total_nnz(&mapping), blocked.stats.nnz_blocked);
        if mapping.merged_up == 2 {
            assert_eq!(mapping.extra_residual.len(), 64 * 64);
        }
    }
}
