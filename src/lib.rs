//! # memsci — scientific computing on memristive accelerators
//!
//! An open, from-scratch reproduction of *Enabling Scientific Computing
//! on Memristive Accelerators* (Feinberg, Vengalam, Whitehair, Wang,
//! Ipek — ISCA 2018): a memristive crossbar accelerator that performs
//! IEEE-754 double-precision sparse linear algebra on fixed-point
//! analog hardware, embedded in Krylov-subspace iterative solvers and
//! compared against a Tesla P100 baseline.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`numeric`] — wide fixed point, alignment, biasing, bit slicing,
//!   early termination, AN codes;
//! * [`sparse`] — matrix formats, generators, the Table II replica
//!   suite, and the heterogeneous blocking preprocessor;
//! * [`xbar`] — the crossbar/cluster hardware simulator with Table III
//!   cost models;
//! * [`core`] — the assembled accelerator (banks, mapping, engines,
//!   overhead/area/dispatch models);
//! * [`gpu`] — the analytic P100 baseline;
//! * [`solvers`] — CG, BiCG, BiCG-STAB, GMRES, Jacobi over the shared
//!   [`Platform`](solvers::Platform) abstraction;
//! * [`telemetry`] — hierarchical spans, hardware event counters, and
//!   the JSON run-manifest writer (strictly observational: enabling it
//!   never changes a numeric result).
//!
//! # Quickstart
//!
//! ```
//! use memsci::core::{accelerate, AcceleratorConfig};
//! use memsci::gpu::GpuPlatform;
//! use memsci::solvers::{cg::cg, SolveOptions};
//! use memsci::sparse::generate::poisson2d;
//!
//! let a = poisson2d(32, 32);
//! let b = vec![1.0; a.rows()];
//!
//! let mut acc = accelerate(&a, AcceleratorConfig::default());
//! let mut x = vec![0.0; a.rows()];
//! let on_accel = cg(&mut acc, &b, &mut x, &SolveOptions::default());
//!
//! let mut gpu = GpuPlatform::new(a);
//! let mut xg = vec![0.0; b.len()];
//! let on_gpu = cg(&mut gpu, &b, &mut xg, &SolveOptions::default());
//!
//! assert!(on_accel.converged && on_gpu.converged);
//! let speedup = on_gpu.time_seconds / on_accel.time_seconds;
//! assert!(speedup.is_finite() && speedup > 0.0);
//! ```

#![warn(missing_docs)]

pub use memsci_core as core;
pub use memsci_gpu as gpu;
pub use memsci_numeric as numeric;
pub use memsci_solvers as solvers;
pub use memsci_sparse as sparse;
pub use memsci_telemetry as telemetry;
pub use memsci_xbar as xbar;
