//! Circuit-simulation workload: a non-symmetric, hub-dominated system
//! (bcircuit-like) solved with BiCG-STAB, plus the §VIII-A dispatch
//! decision on a matrix that refuses to block.
//!
//! ```text
//! cargo run --release --example circuit_simulation
//! ```

use memsci::core::dispatch::{choose_target, Target};
use memsci::core::{AcceleratorConfig, AcceleratorPlatform};
use memsci::gpu::GpuPlatform;
use memsci::solvers::bicgstab::bicgstab;
use memsci::solvers::SolveOptions;
use memsci::sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci::sparse::suite::by_name;

fn run(name: &str) {
    let entry = by_name(name).expect("suite entry");
    let a = entry.generate_scaled(0.25);
    println!(
        "--- {} ({} rows, {} nnz) ---",
        entry.name,
        a.rows(),
        a.nnz()
    );

    let config = AcceleratorConfig::default();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let target = choose_target(&blocked, &config);
    println!(
        "blocking efficiency {:.1}% -> run on {:?}",
        blocked.stats.efficiency() * 100.0,
        target
    );

    let n = a.rows();
    let b = vec![1.0; n];
    let opts = SolveOptions::with_tol(1e-8).max_iters(1500);

    match target {
        Target::Accelerator => {
            let mut acc = AcceleratorPlatform::new(&blocked, config);
            let mut x = vec![0.0; n];
            let r = bicgstab(&mut acc, &b, &mut x, &opts);
            let mut gpu = GpuPlatform::new(a);
            let mut xg = vec![0.0; n];
            let rg = bicgstab(&mut gpu, &b, &mut xg, &opts);
            println!(
                "accelerator {:.2} ms vs gpu {:.2} ms -> speedup {:.1}x",
                r.time_seconds * 1e3,
                rg.time_seconds * 1e3,
                rg.time_seconds / r.time_seconds
            );
        }
        Target::Gpu => {
            // The preprocessing attempt is bounded (at most four touches
            // per non-zero), so falling back costs a few percent.
            let mut gpu = GpuPlatform::new(a);
            let mut x = vec![0.0; n];
            let r = bicgstab(&mut gpu, &b, &mut x, &opts);
            println!(
                "gpu fallback solve: {} iterations, {:.2} ms",
                r.iterations,
                r.time_seconds * 1e3
            );
        }
    }
}

fn main() {
    // A hub-dominated circuit matrix that blocks reasonably well...
    run("bcircuit");
    // ...and the structureless CFD matrix of §VIII-F that does not.
    run("ns3Da");
}
