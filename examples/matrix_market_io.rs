//! Matrix Market round trip: write a generated system to `.mtx`, read
//! it back, and run the blocking preprocessor on it — the same path a
//! real SuiteSparse download takes.
//!
//! ```text
//! cargo run --release --example matrix_market_io
//! ```

use memsci::sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci::sparse::matrix_market::{read_coo, write_csr};
use memsci::sparse::suite::by_name;
use memsci::sparse::MatrixStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = by_name("crystm03").expect("suite entry");
    let a = entry.generate_scaled(0.1);

    // Write to Matrix Market (in-memory here; a file works the same).
    let mut buffer = Vec::new();
    write_csr(&a, &mut buffer)?;
    println!("wrote {} bytes of MatrixMarket text", buffer.len());
    println!(
        "header: {}",
        String::from_utf8_lossy(&buffer[..buffer.iter().position(|&b| b == b'\n').unwrap()])
    );

    // Read it back and verify the round trip.
    let back = read_coo(buffer.as_slice())?.to_csr();
    assert_eq!(a, back, "round trip must be exact");
    let stats = MatrixStats::compute(&back);
    println!(
        "round-tripped: {} rows, {} nnz, {:.1} nnz/row, exponent range {} bits",
        stats.rows, stats.nnz, stats.nnz_per_row, stats.exponent_range
    );

    // Preprocess as the accelerator would.
    let blocked = BlockedMatrix::block(&back, &BlockingConfig::default());
    println!(
        "blocking: {:.1}% captured, {:.2} touches per non-zero (bounded by 4)",
        blocked.stats.efficiency() * 100.0,
        blocked.stats.touches_per_nnz()
    );
    Ok(())
}
