//! Quickstart: solve a Poisson system on the memristive accelerator and
//! compare against the GPU baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use memsci::core::{accelerate, AcceleratorConfig};
use memsci::gpu::GpuPlatform;
use memsci::solvers::cg::cg;
use memsci::solvers::SolveOptions;
use memsci::sparse::generate::{banded, make_diagonally_dominant, symmetrize, ValueModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // An FEM-style banded SPD system: dense enough along the diagonal
    // for the blocking preprocessor to map it onto crossbars. (A plain
    // 5-point Poisson stencil at ~5 nnz/row is too sparse to block and
    // would be dispatched to the GPU, §VIII-A.)
    let mut rng = StdRng::seed_from_u64(42);
    let band = banded(8192, 12, 0.8, ValueModel::with_spread(8), &mut rng);
    let a = make_diagonally_dominant(&symmetrize(&band), 1.2);
    let n = a.rows();
    println!("system: {n} unknowns, {} non-zeros", a.nnz());
    let b = vec![1.0; n];
    let opts = SolveOptions::with_tol(1e-10);

    // Solve on the memristive accelerator (Table I configuration).
    let mut acc = accelerate(&a, AcceleratorConfig::default());
    println!(
        "accelerator: {} clusters programmed, {} residual nnz on local processors",
        acc.cluster_count(),
        acc.residual_nnz()
    );
    let mut x_acc = vec![0.0; n];
    let r_acc = cg(&mut acc, &b, &mut x_acc, &opts);
    println!(
        "accelerator: {} iterations, modelled {:.1} us, {:.3} mJ",
        r_acc.iterations,
        r_acc.time_seconds * 1e6,
        r_acc.energy_joules * 1e3
    );

    // Solve on the Tesla P100 baseline model.
    let mut gpu = GpuPlatform::new(a);
    let mut x_gpu = vec![0.0; n];
    let r_gpu = cg(&mut gpu, &b, &mut x_gpu, &opts);
    println!(
        "gpu:         {} iterations, modelled {:.1} us, {:.3} mJ",
        r_gpu.iterations,
        r_gpu.time_seconds * 1e6,
        r_gpu.energy_joules * 1e3
    );

    // Both platforms compute in the same precision class: the solutions
    // agree to solver tolerance.
    let max_diff = x_acc
        .iter()
        .zip(&x_gpu)
        .map(|(a, g)| (a - g).abs())
        .fold(0.0f64, f64::max);
    println!("max |x_accel - x_gpu| = {max_diff:.2e}");
    println!(
        "speedup {:.1}x, energy improvement {:.1}x",
        r_gpu.time_seconds / r_acc.time_seconds,
        r_gpu.energy_joules / r_acc.energy_joules
    );
}
