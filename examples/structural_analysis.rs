//! Structural-analysis workload: a nasasrb-like FEM stiffness system
//! solved with CG, showing how exponent-range locality and evictions
//! (§IV-B, §VIII-B) play out on a realistic matrix.
//!
//! ```text
//! cargo run --release --example structural_analysis
//! ```

use memsci::core::{AcceleratorConfig, AcceleratorPlatform};
use memsci::gpu::GpuPlatform;
use memsci::solvers::cg::cg;
use memsci::solvers::SolveOptions;
use memsci::sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci::sparse::suite::by_name;

fn main() {
    // A quarter-scale replica of nasasrb: a dense-banded shell-element
    // stiffness matrix with a wide value dynamic range.
    let entry = by_name("nasasrb").expect("suite entry");
    let a = entry.generate_scaled(0.25);
    println!("{} replica: {} rows, {} nnz", entry.name, a.rows(), a.nnz());

    // Preprocess: the blocking step is where the exponent range bites.
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    println!(
        "blocking: {:.1}% captured ({} blocks), {} values evicted for exponent range",
        blocked.stats.efficiency() * 100.0,
        blocked.blocks.len(),
        blocked.stats.nnz_evicted_range
    );
    for (size, count) in blocked.block_size_histogram() {
        println!("  {count:>5} blocks of {size}x{size}");
    }

    let n = a.rows();
    let b = vec![1.0; n];
    // Stiffness systems are ill-conditioned; bound the iteration budget.
    let opts = SolveOptions::with_tol(1e-8)
        .max_iters(1500)
        .record_residuals(true);

    let mut acc = AcceleratorPlatform::new(&blocked, AcceleratorConfig::default());
    let mut x = vec![0.0; n];
    let r_acc = cg(&mut acc, &b, &mut x, &opts);
    let s = acc.last_spmv();
    println!(
        "accelerator: {} iterations ({}), {:.2} ms modelled",
        r_acc.iterations,
        if r_acc.converged {
            "converged"
        } else {
            "capped"
        },
        r_acc.time_seconds * 1e3
    );
    println!(
        "  per MVM: {:.1} us ({:.1} avg vector slices; {:.0}% conversions skipped)",
        s.time * 1e6,
        s.avg_slices,
        s.skipped_fraction * 100.0
    );

    let mut gpu = GpuPlatform::new(a);
    let mut xg = vec![0.0; n];
    let r_gpu = cg(&mut gpu, &b, &mut xg, &opts);
    println!(
        "gpu:         {} iterations, {:.2} ms modelled",
        r_gpu.iterations,
        r_gpu.time_seconds * 1e3
    );
    println!(
        "speedup {:.1}x, energy improvement {:.1}x",
        r_gpu.time_seconds / r_acc.time_seconds,
        r_gpu.energy_joules / r_acc.energy_joules
    );
}
