//! Multi-accelerator scaling (§VI): split one large system row-wise
//! across several accelerators that synchronize between iterations.
//!
//! ```text
//! cargo run --release --example multi_accelerator
//! ```

use memsci::core::{AcceleratorConfig, MultiAcceleratorPlatform};
use memsci::solvers::cg::cg;
use memsci::solvers::SolveOptions;
use memsci::sparse::generate::{banded, make_diagonally_dominant, symmetrize, ValueModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A larger FEM-style system than one small accelerator would hold.
    let mut rng = StdRng::seed_from_u64(9);
    let band = banded(20_000, 14, 0.8, ValueModel::with_spread(10), &mut rng);
    let a = make_diagonally_dominant(&symmetrize(&band), 1.2);
    let n = a.rows();
    println!("system: {n} unknowns, {} non-zeros", a.nnz());

    let b = vec![1.0; n];
    let opts = SolveOptions::with_tol(1e-9);
    // Model each device as a small 16-bank accelerator and a 2 µs
    // inter-device exchange per kernel.
    let config = AcceleratorConfig::with_banks(16);

    for devices in [1usize, 2, 4] {
        let mut multi = MultiAcceleratorPlatform::new(&a, devices, config.clone(), 2.0e-6);
        let mut x = vec![0.0; n];
        let report = cg(&mut multi, &b, &mut x, &opts);
        println!(
            "{devices} device(s): {} clusters, {} iterations, {:.2} ms modelled, {:.1} mJ",
            multi.cluster_count(),
            report.iterations,
            report.time_seconds * 1e3,
            report.energy_joules * 1e3,
        );
    }
    println!("(stripes shrink per device; synchronization adds a fixed cost per kernel)");
}
