//! Precision study on the bit-exact platform: every dot product is
//! computed through real crossbar simulations — alignment, biasing,
//! AN coding, bit slicing, early termination — and the solver's
//! behaviour is compared against plain IEEE-754, with and without
//! device noise (§IV, §VIII-G).
//!
//! ```text
//! cargo run --release --example precision_study
//! ```

use memsci::core::{AcceleratorConfig, ExactAcceleratorPlatform, ExactOptions};
use memsci::solvers::cg::cg;
use memsci::solvers::{CsrPlatform, SolveOptions};
use memsci::sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci::sparse::generate::poisson2d;

fn main() {
    let a = poisson2d(12, 12);
    let n = a.rows();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let b = vec![1.0; n];
    let opts = SolveOptions::with_tol(1e-10).max_iters(500);

    // Reference: plain f64 CG.
    let mut reference = CsrPlatform::new(a.clone());
    let mut x_ref = vec![0.0; n];
    let r_ref = cg(&mut reference, &b, &mut x_ref, &opts);
    println!("f64 reference : {} iterations", r_ref.iterations);

    // Bit-exact crossbars, ideal devices: same convergence behaviour,
    // because the in-situ dot products carry full IEEE-754 precision.
    let mut exact = ExactAcceleratorPlatform::new(
        &blocked,
        AcceleratorConfig::with_banks(2),
        ExactOptions::default(),
    )
    .expect("finite matrix");
    let mut x = vec![0.0; n];
    let r = cg(&mut exact, &b, &mut x, &opts);
    println!(
        "ideal crossbar: {} iterations (AN corrections: {})",
        r.iterations, exact.an_corrections
    );

    // Noisy devices: 2-bit cells with 5% programming error (the worst
    // point of Figure 13) visibly hinder convergence.
    let mut config = AcceleratorConfig::with_banks(2);
    config.cell = config
        .cell
        .with_bits_per_cell(2)
        .with_programming_sigma(0.05);
    let mut noisy = ExactAcceleratorPlatform::new(
        &blocked,
        config,
        ExactOptions {
            seed: 1,
            ..Default::default()
        },
    )
    .expect("finite matrix");
    let mut x_noisy = vec![0.0; n];
    let r_noisy = cg(&mut noisy, &b, &mut x_noisy, &opts);
    println!(
        "noisy crossbar: {} iterations, converged = {} (B=2, 5% programming error)",
        r_noisy.iterations, r_noisy.converged
    );

    let err = x
        .iter()
        .zip(&x_ref)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |x_exact - x_f64| = {err:.2e}");
}
