//! Telemetry is strictly observational: enabling the sink, attaching
//! per-solve capture, or changing the host thread count must not move
//! a single bit of any numeric output, on either engine.

use memsci::core::{
    AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions,
};
use memsci::solvers::cg::cg;
use memsci::solvers::{SolveOptions, SolveReport};
use memsci::sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci::sparse::generate::poisson2d;
use memsci::sparse::suite::by_name;
use memsci::telemetry;
use memsci::telemetry::Counter;

fn assert_bit_identical(
    label: &str,
    reference: &(Vec<f64>, SolveReport),
    run: &(Vec<f64>, SolveReport),
) {
    let (x_ref, r_ref) = reference;
    let (x, r) = run;
    assert_eq!(x.len(), x_ref.len(), "{label}: solution length");
    for (i, (a, b)) in x.iter().zip(x_ref).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: x[{i}]");
    }
    assert_eq!(r.iterations, r_ref.iterations, "{label}: iterations");
    assert_eq!(r.converged, r_ref.converged, "{label}: converged");
    assert_eq!(
        r.relative_residual.to_bits(),
        r_ref.relative_residual.to_bits(),
        "{label}: relative residual"
    );
    assert_eq!(
        r.residual_history.len(),
        r_ref.residual_history.len(),
        "{label}: residual history length"
    );
    for (i, (a, b)) in r
        .residual_history
        .iter()
        .zip(&r_ref.residual_history)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: residual[{i}]");
    }
    assert_eq!(
        r.time_seconds.to_bits(),
        r_ref.time_seconds.to_bits(),
        "{label}: modelled time"
    );
    assert_eq!(
        r.energy_joules.to_bits(),
        r_ref.energy_joules.to_bits(),
        "{label}: modelled energy"
    );
}

fn fast_solve(threads: usize, with_telemetry: bool) -> (Vec<f64>, SolveReport) {
    let a = by_name("Pres_Poisson").unwrap().generate_scaled(0.05);
    let n = a.rows();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let config = AcceleratorConfig {
        threads: Some(threads),
        ..Default::default()
    };
    let mut acc = AcceleratorPlatform::new(&blocked, config);
    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    let opts = SolveOptions::with_tol(1e-8)
        .max_iters(500)
        .record_residuals(true)
        .telemetry(with_telemetry);
    let r = cg(&mut acc, &b, &mut x, &opts);
    (x, r)
}

/// Fast engine: telemetry on/off × host threads 1/4 all produce the
/// same bits.
#[test]
fn fast_platform_outputs_are_bit_identical() {
    let _guard = telemetry::exclusive_for_tests();
    let reference = fast_solve(1, false);
    assert!(reference.1.converged);
    assert!(reference.1.telemetry.is_none());
    for (threads, with_telemetry) in [(1, true), (4, false), (4, true)] {
        let run = fast_solve(threads, with_telemetry);
        let label = format!("fast threads={threads} telemetry={with_telemetry}");
        assert_bit_identical(&label, &reference, &run);
        assert_eq!(run.1.telemetry.is_some(), with_telemetry, "{label}");
        if let Some(t) = &run.1.telemetry {
            assert!(t.counters.get(Counter::AdcConversions) > 0, "{label}");
            assert!(t.counters.get(Counter::SpmvOps) > 0, "{label}");
            assert!(!t.spans.is_empty(), "{label}");
        }
    }
    telemetry::disable();
}

fn exact_solve(with_telemetry: bool) -> (Vec<f64>, SolveReport, u64) {
    let a = poisson2d(10, 10);
    let n = a.rows();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut exact = ExactAcceleratorPlatform::new(
        &blocked,
        AcceleratorConfig::with_banks(2),
        ExactOptions {
            seed: 3,
            rtn_probability: 2e-5,
            ..Default::default()
        },
    )
    .unwrap();
    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    let opts = SolveOptions::with_tol(1e-9)
        .max_iters(400)
        .record_residuals(true)
        .telemetry(with_telemetry);
    let r = cg(&mut exact, &b, &mut x, &opts);
    (x, r, exact.an_corrections)
}

/// Bit-exact engine with injected RTN upsets: the seeded noise stream —
/// and therefore every output bit and every AN-code correction — is the
/// same whether or not the sink is recording.
#[test]
fn exact_platform_outputs_are_bit_identical() {
    let _guard = telemetry::exclusive_for_tests();
    let (x_ref, r_ref, corrections_ref) = exact_solve(false);
    assert!(r_ref.converged);
    let (x, r, corrections) = exact_solve(true);
    assert_bit_identical("exact telemetry=true", &(x_ref, r_ref), &(x, r.clone()));
    assert_eq!(corrections, corrections_ref, "AN corrections drifted");
    let t = r.telemetry.expect("telemetry was requested");
    // The captured counter delta agrees with the platform's own
    // lifetime accumulator (one solve, fresh platform).
    assert_eq!(t.counters.get(Counter::AnCorrections), corrections);
    assert!(t.counters.get(Counter::AdcConversions) > 0);
    assert!(t.counters.get(Counter::BiasDebiases) > 0);
    telemetry::disable();
}
