//! System-level integration: the complete pipeline — suite replica →
//! blocking → capacity mapping → engines → solvers — across matrix
//! classes and platforms.

use memsci::core::dispatch::Target;
use memsci::core::{map_blocks, AcceleratorConfig, AcceleratorPlatform};
use memsci::gpu::GpuPlatform;
use memsci::solvers::platform::Platform;
use memsci::solvers::{bicgstab::bicgstab, cg::cg, gmres::gmres, SolveOptions};
use memsci::sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci::sparse::suite::{by_name, suite};

const SCALE: f64 = 0.05;

/// Every suite replica survives the full preprocessing pipeline with
/// entry conservation at each stage.
#[test]
fn pipeline_conserves_every_matrix() {
    let bc = BlockingConfig::default();
    let config = AcceleratorConfig::default();
    for entry in suite() {
        let a = entry.generate_scaled(SCALE);
        let blocked = BlockedMatrix::block(&a, &bc);
        assert_eq!(
            blocked.nnz(),
            a.nnz(),
            "{}: blocking conservation",
            entry.name
        );
        let mapping = map_blocks(&blocked, &config);
        assert_eq!(
            mapping.mapped_nnz() + mapping.extra_residual.len(),
            blocked.stats.nnz_blocked,
            "{}: mapping conservation",
            entry.name
        );
    }
}

/// The accelerator engine reproduces CSR SpMV numerics for every
/// replica class.
#[test]
fn engine_spmv_matches_reference_across_the_suite() {
    for name in [
        "Pres_Poisson",
        "bcircuit",
        "ns3Da",
        "Trefethen_20000",
        "GaAsH6",
    ] {
        let entry = by_name(name).unwrap();
        let a = entry.generate_scaled(SCALE);
        let n = a.rows();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let mut acc = AcceleratorPlatform::new(&blocked, AcceleratorConfig::default());
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 37) % 101) as f64 * 0.021 - 1.0)
            .collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        acc.spmv(&x, &mut y1);
        a.spmv(&x, &mut y2);
        for (i, (u, v)) in y1.iter().zip(&y2).enumerate() {
            assert!(
                (u - v).abs() <= 1e-9 * v.abs().max(1.0),
                "{name} row {i}: {u} vs {v}"
            );
        }
    }
}

/// Dispatch (§VIII-A) routes the two difficult matrices to the GPU and
/// everything else to the accelerator at representative scale.
#[test]
fn dispatch_matches_the_papers_split() {
    let bc = BlockingConfig::default();
    let config = AcceleratorConfig::default();
    for entry in suite() {
        let a = entry.generate_scaled(0.15);
        let blocked = BlockedMatrix::block(&a, &bc);
        let target = memsci::core::dispatch::choose_target(&blocked, &config);
        let expected = if entry.name == "ns3Da" || entry.name == "thermomech_TC" {
            Target::Gpu
        } else {
            Target::Accelerator
        };
        assert_eq!(
            target,
            expected,
            "{} (efficiency {:.3})",
            entry.name,
            blocked.stats.efficiency()
        );
    }
}

/// All three platforms drive all applicable solvers to the same answer.
#[test]
fn solvers_agree_across_platforms() {
    let entry = by_name("qa8fm").unwrap();
    let a = entry.generate_scaled(SCALE);
    let n = a.rows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let opts = SolveOptions::with_tol(1e-9).max_iters(3000);

    let solve_cg = |p: &mut dyn Platform| {
        let mut x = vec![0.0; n];
        let r = cg(p, &b, &mut x, &opts);
        assert!(r.converged);
        x
    };
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut acc = AcceleratorPlatform::new(&blocked, AcceleratorConfig::default());
    let mut gpu = GpuPlatform::new(a.clone());
    let mut cpu = memsci::solvers::CsrPlatform::new(a.clone());
    let xs = [solve_cg(&mut acc), solve_cg(&mut gpu), solve_cg(&mut cpu)];
    for x in &xs[1..] {
        for (u, v) in xs[0].iter().zip(x) {
            assert!((u - v).abs() <= 1e-5 * v.abs().max(1.0));
        }
    }

    // GMRES and BiCG-STAB also run on the accelerator unchanged.
    let mut x = vec![0.0; n];
    assert!(gmres(&mut acc, &b, &mut x, 30, &opts).converged);
    let mut x = vec![0.0; n];
    assert!(bicgstab(&mut acc, &b, &mut x, &opts).converged);
}

/// Cost accounting is self-consistent: more iterations cost more, and
/// both time and energy are strictly positive per kernel.
#[test]
fn cost_accounting_is_monotone() {
    let entry = by_name("crystm03").unwrap(); // SPD: CG applies
    let a = entry.generate_scaled(SCALE);
    let n = a.rows();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut acc = AcceleratorPlatform::new(&blocked, AcceleratorConfig::default());
    let b = vec![1.0; n];
    let loose = {
        let mut x = vec![0.0; n];
        cg(&mut acc, &b, &mut x, &SolveOptions::with_tol(1e-2))
    };
    let elapsed_after_loose = acc.elapsed_seconds();
    let tight = {
        let mut x = vec![0.0; n];
        cg(&mut acc, &b, &mut x, &SolveOptions::with_tol(1e-12))
    };
    assert!(tight.converged && loose.converged);
    assert!(tight.iterations > loose.iterations);
    assert!(tight.time_seconds > loose.time_seconds);
    assert!(tight.energy_joules > loose.energy_joules);
    assert!(loose.time_seconds > 0.0 && loose.energy_joules > 0.0);
    // Cumulative platform counters advance across solves.
    assert!(acc.elapsed_seconds() > elapsed_after_loose);
}

/// The capacity mapper keeps Table I inventory limits for every replica.
#[test]
fn mapping_respects_cluster_inventory() {
    let config = AcceleratorConfig::default();
    for entry in suite() {
        let a = entry.generate_scaled(0.15);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let mapping = map_blocks(&blocked, &config);
        for &(size, _) in &config.clusters_per_bank {
            let used = mapping
                .clusters
                .iter()
                .filter(|c| c.size as usize == size)
                .count();
            assert!(
                used <= config.cluster_capacity(size),
                "{}: {used} clusters of {size} exceed capacity",
                entry.name
            );
        }
        // Per-bank limits too.
        let mut per_bank: std::collections::BTreeMap<(usize, u32), usize> = Default::default();
        for c in &mapping.clusters {
            *per_bank.entry((c.bank, c.size)).or_default() += 1;
        }
        for (&(bank, size), &count) in &per_bank {
            let limit = config
                .clusters_per_bank
                .iter()
                .find(|&&(s, _)| s == size as usize)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            assert!(
                count <= limit,
                "{}: bank {bank} holds {count} x {size} clusters (limit {limit})",
                entry.name
            );
        }
    }
}
