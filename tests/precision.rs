//! Cross-crate precision invariants: the accelerator's arithmetic is
//! IEEE-754-compatible end to end (paper §IV).

use memsci::core::{AcceleratorConfig, ExactAcceleratorPlatform, ExactOptions};
use memsci::numeric::{FloatParts, Rounding, WideInt};
use memsci::solvers::cg::cg;
use memsci::solvers::{CsrPlatform, SolveOptions};
use memsci::sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci::sparse::generate::{banded, make_diagonally_dominant, symmetrize, ValueModel};
use memsci::sparse::Csr;
use memsci::xbar::cluster::{Cluster, ClusterSpec, MvmOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spd_matrix(n: usize, spread: i32, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = banded(n, 6, 0.7, ValueModel::with_spread(spread), &mut rng);
    make_diagonally_dominant(&symmetrize(&base), 1.3)
}

/// Exact dot product oracle rounded toward −∞ to 53 bits.
fn exact_dot_floor(pairs: &[(f64, f64)]) -> f64 {
    let mut min_exp = i32::MAX;
    let mut terms = Vec::new();
    for &(a, x) in pairs {
        let pa = FloatParts::decompose(a).unwrap();
        let px = FloatParts::decompose(x).unwrap();
        if pa.is_zero() || px.is_zero() {
            continue;
        }
        terms.push((
            pa.signed_mantissa() * px.signed_mantissa(),
            pa.exponent + px.exponent,
        ));
        min_exp = min_exp.min(pa.exponent + px.exponent);
    }
    let mut sum = WideInt::zero();
    for (m, e) in terms {
        sum += &m.shl((e - min_exp) as u32);
    }
    sum.to_f64_with_exp(min_exp, Rounding::TowardNegInf)
}

/// The headline §IV claim: a cluster's in-situ dot products are exactly
/// the infinitely-precise dot products rounded toward −∞ — across a
/// range of block contents and vector dynamic ranges.
#[test]
fn cluster_dot_products_are_exactly_rounded() {
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..4 {
        let n = 32; // cluster sizes are powers of two
        let matrix = banded(
            n,
            5 + trial,
            0.8,
            ValueModel::with_spread(8 + 4 * trial as i32),
            &mut rng,
        )
        .to_csr();
        let entries: Vec<(u16, u16, f64)> = matrix
            .iter()
            .map(|(r, c, v)| (r as u16, c as u16, v))
            .collect();
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let outcome = Cluster::program(spec, &entries, &mut rng).unwrap();
        let x: Vec<f64> = (0..n)
            .map(|i| (1.0 + i as f64 * 0.13) * (2.0f64).powi((i as i32 % 7) * 5 - 15))
            .collect();
        let res = outcome
            .cluster
            .mvm(&x, &MvmOptions::default(), &mut rng)
            .unwrap();
        for r in 0..n {
            let pairs: Vec<(f64, f64)> = matrix
                .row(r)
                .0
                .iter()
                .zip(matrix.row(r).1)
                .map(|(&c, &v)| (v, x[c as usize]))
                .collect();
            let evicted_here = outcome.evicted.iter().any(|&(er, _, _)| er as usize == r);
            if evicted_here {
                continue; // CIC evictions move entries to the CPU path
            }
            assert_eq!(res.y[r], exact_dot_floor(&pairs), "trial {trial}, row {r}");
        }
    }
}

/// The §VIII claim backing Figure 8's fairness: solvers on the
/// (bit-exact) accelerator converge like the f64 reference.
#[test]
fn exact_platform_matches_f64_convergence() {
    for (spread, seed) in [(6, 10), (14, 11)] {
        let a = spd_matrix(120, spread, seed);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let n = a.rows();
        let b = vec![1.0; n];
        let opts = SolveOptions::with_tol(1e-9).max_iters(500);

        let mut reference = CsrPlatform::new(a.clone());
        let mut x_ref = vec![0.0; n];
        let r_ref = cg(&mut reference, &b, &mut x_ref, &opts);
        assert!(r_ref.converged);

        let mut exact = ExactAcceleratorPlatform::new(
            &blocked,
            AcceleratorConfig::with_banks(2),
            ExactOptions::default(),
        )
        .unwrap();
        let mut x = vec![0.0; n];
        let r = cg(&mut exact, &b, &mut x, &opts);
        assert!(
            r.converged,
            "spread {spread}: exact platform did not converge"
        );
        assert!(
            r.iterations.abs_diff(r_ref.iterations) <= 2,
            "spread {spread}: {} vs {} iterations",
            r.iterations,
            r_ref.iterations
        );
        // Solutions agree to solver accuracy.
        for (xa, xb) in x.iter().zip(&x_ref) {
            assert!((xa - xb).abs() <= 1e-6 * xb.abs().max(1.0));
        }
        // Ideal devices: the AN code should have had nothing to do.
        assert_eq!(exact.an_corrections, 0);
        assert_eq!(exact.an_detections, 0);
    }
}

/// Directed-rounding support (§IV-D): the four modes bracket correctly
/// on the exact platform.
#[test]
fn rounding_modes_bracket_on_clusters() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 16;
    let matrix = banded(n, 4, 0.9, ValueModel::with_spread(6), &mut rng).to_csr();
    let entries: Vec<(u16, u16, f64)> = matrix
        .iter()
        .map(|(r, c, v)| (r as u16, c as u16, v))
        .collect();
    let spec = ClusterSpec {
        size: n,
        ..Default::default()
    };
    let outcome = Cluster::program(spec, &entries, &mut rng).unwrap();
    let evicted_rows: std::collections::BTreeSet<usize> = outcome
        .evicted
        .iter()
        .map(|&(r, _, _)| r as usize)
        .collect();
    let cluster = outcome.cluster;
    let x: Vec<f64> = (0..n).map(|i| 0.3 + (i as f64) * 0.77).collect();
    let mut run = |mode| {
        cluster
            .mvm(
                &x,
                &MvmOptions {
                    rounding: mode,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap()
            .y
    };
    let down = run(Rounding::TowardNegInf);
    let up = run(Rounding::TowardPosInf);
    let near = run(Rounding::NearestEven);
    let zero = run(Rounding::TowardZero);
    for r in 0..n {
        assert!(down[r] <= near[r] && near[r] <= up[r], "row {r}");
        assert!(zero[r] == down[r] || zero[r] == up[r], "row {r}");
        if evicted_rows.contains(&r) {
            continue; // CIC evictions route entries to the CPU path
        }
        // The floor mode matches the exact reference bit for bit.
        let pairs: Vec<(f64, f64)> = matrix
            .row(r)
            .0
            .iter()
            .zip(matrix.row(r).1)
            .map(|(&c, &v)| (v, x[c as usize]))
            .collect();
        let want = exact_dot_floor(&pairs);
        assert_eq!(down[r], want, "row {r}");
    }
}

/// Non-finite inputs are rejected at the boundary (§IV-D), not mapped.
#[test]
fn non_finite_inputs_are_rejected() {
    let mut rng = StdRng::seed_from_u64(4);
    let spec = ClusterSpec {
        size: 8,
        ..Default::default()
    };
    let entries = vec![(0u16, 0u16, f64::INFINITY)];
    assert!(Cluster::program(spec, &entries, &mut rng).is_err());
    let entries = vec![(0u16, 0u16, 1.0)];
    let cluster = Cluster::program(spec, &entries, &mut rng).unwrap().cluster;
    let mut x = vec![1.0; 8];
    x[3] = f64::NAN;
    assert!(cluster.mvm(&x, &MvmOptions::default(), &mut rng).is_err());
}
