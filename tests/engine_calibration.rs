//! Calibration: the fast engine's analytic early-termination model must
//! track the bit-exact cluster simulation (DESIGN.md §4, "two engines").

use memsci::core::AcceleratorPlatform;
use memsci::numeric::align::analyze;
use memsci::sparse::generate::{banded, ValueModel};
use memsci::xbar::cluster::{Cluster, ClusterSpec, MvmOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-row slice counts estimated by the fast engine vs measured on the
/// exact cluster: the estimate must be within a small additive band and
/// err on the conservative (not-fewer-slices) side on average.
#[test]
fn slice_estimates_track_the_exact_engine() {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 32;
    let matrix = banded(n, 6, 0.8, ValueModel::with_spread(10), &mut rng).to_csr();
    let entries: Vec<(u16, u16, f64)> = matrix
        .iter()
        .map(|(r, c, v)| (r as u16, c as u16, v))
        .collect();
    let spec = ClusterSpec {
        size: n,
        ..Default::default()
    };
    let cluster = Cluster::program(spec, &entries, &mut rng).unwrap().cluster;

    // A vector with enough dynamic range for termination to matter.
    let x: Vec<f64> = (0..n)
        .map(|i| (0.7 + i as f64 * 0.05) * (2.0f64).powi((i as i32 % 8) * 5 - 17))
        .collect();
    let opts = MvmOptions {
        collect_row_profile: true,
        ..Default::default()
    };
    let res = cluster.mvm(&x, &opts, &mut rng).unwrap();
    let measured = res.row_slices.unwrap();

    let x_alignment = analyze(x.iter().copied()).unwrap().unwrap();
    let xw = x_alignment.magnitude_bits + 1;
    assert_eq!(res.slices_total, xw);

    let mut dots = vec![0.0f64; n];
    for (r, c, v) in matrix.iter() {
        dots[r] += v * x[c];
    }

    let mut total_est = 0i64;
    let mut total_meas = 0i64;
    for r in 0..n {
        if matrix.row(r).0.is_empty() {
            continue;
        }
        let est = AcceleratorPlatform::estimate_row_slices(
            dots[r],
            cluster.exp_base(),
            x_alignment.exp_base,
            xw,
            i64::from(cluster.partial_magnitude_bits()),
        );
        let meas = measured[r] as usize;
        assert!(
            est.abs_diff(meas) <= 8,
            "row {r}: estimated {est} vs measured {meas} slices (of {xw})"
        );
        total_est += est as i64;
        total_meas += meas as i64;
    }
    // In aggregate the analytic model must not be optimistic by more
    // than a few percent.
    assert!(
        total_est * 100 >= total_meas * 95,
        "aggregate estimate {total_est} vs measured {total_meas}"
    );
}

/// Cluster-level energy from the exact simulation and the fast engine's
/// closed-form accounting agree to first order.
#[test]
fn energy_accounting_is_consistent_between_engines() {
    let mut rng = StdRng::seed_from_u64(78);
    let n = 32;
    let matrix = banded(n, 8, 0.75, ValueModel::with_spread(8), &mut rng).to_csr();
    let entries: Vec<(u16, u16, f64)> = matrix
        .iter()
        .map(|(r, c, v)| (r as u16, c as u16, v))
        .collect();
    let spec = ClusterSpec {
        size: n,
        ..Default::default()
    };
    let cluster = Cluster::program(spec, &entries, &mut rng).unwrap().cluster;
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.31).sin()).collect();
    let exact = cluster.mvm(&x, &MvmOptions::default(), &mut rng).unwrap();

    // Closed form: conversions × headstarted column energy bounds.
    let cost = memsci::xbar::CostModel::default();
    let full = cost.column_energy(n, 1, None);
    let floor = cost.skipped_column_energy();
    let upper = exact.conversions as f64 * full + exact.conversions_skipped as f64 * floor;
    let lower = (exact.conversions + exact.conversions_skipped) as f64 * floor;
    assert!(
        exact.energy > lower && exact.energy <= upper * 1.001,
        "energy {} outside [{lower}, {upper}]",
        exact.energy
    );
}
