/root/repo/target/release/examples/circuit_simulation-38cf8fdd174910aa.d: examples/circuit_simulation.rs

/root/repo/target/release/examples/circuit_simulation-38cf8fdd174910aa: examples/circuit_simulation.rs

examples/circuit_simulation.rs:
