/root/repo/target/release/examples/structural_analysis-4933ae02dccf2314.d: examples/structural_analysis.rs

/root/repo/target/release/examples/structural_analysis-4933ae02dccf2314: examples/structural_analysis.rs

examples/structural_analysis.rs:
