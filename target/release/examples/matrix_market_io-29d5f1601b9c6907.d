/root/repo/target/release/examples/matrix_market_io-29d5f1601b9c6907.d: examples/matrix_market_io.rs

/root/repo/target/release/examples/matrix_market_io-29d5f1601b9c6907: examples/matrix_market_io.rs

examples/matrix_market_io.rs:
