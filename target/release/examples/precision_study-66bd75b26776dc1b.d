/root/repo/target/release/examples/precision_study-66bd75b26776dc1b.d: examples/precision_study.rs

/root/repo/target/release/examples/precision_study-66bd75b26776dc1b: examples/precision_study.rs

examples/precision_study.rs:
