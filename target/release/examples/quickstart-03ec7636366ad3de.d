/root/repo/target/release/examples/quickstart-03ec7636366ad3de.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-03ec7636366ad3de: examples/quickstart.rs

examples/quickstart.rs:
