/root/repo/target/release/examples/multi_accelerator-725ef2b0cbd38a2a.d: examples/multi_accelerator.rs

/root/repo/target/release/examples/multi_accelerator-725ef2b0cbd38a2a: examples/multi_accelerator.rs

examples/multi_accelerator.rs:
