/root/repo/target/release/libmemsci_exec.rlib: /root/repo/crates/exec/src/lib.rs
