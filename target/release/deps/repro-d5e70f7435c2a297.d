/root/repo/target/release/deps/repro-d5e70f7435c2a297.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-d5e70f7435c2a297: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
