/root/repo/target/release/deps/memsci_solvers-42b6bee1fcfd2e94.d: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

/root/repo/target/release/deps/memsci_solvers-42b6bee1fcfd2e94: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

crates/solvers/src/lib.rs:
crates/solvers/src/bicg.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/gmres.rs:
crates/solvers/src/jacobi.rs:
crates/solvers/src/pcg.rs:
crates/solvers/src/platform.rs:
crates/solvers/src/report.rs:
