/root/repo/target/release/deps/memsci_telemetry-09cdf679dd367214.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/memsci_telemetry-09cdf679dd367214: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/span.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/telemetry
