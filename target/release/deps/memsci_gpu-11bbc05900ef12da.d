/root/repo/target/release/deps/memsci_gpu-11bbc05900ef12da.d: crates/gpu/src/lib.rs

/root/repo/target/release/deps/libmemsci_gpu-11bbc05900ef12da.rlib: crates/gpu/src/lib.rs

/root/repo/target/release/deps/libmemsci_gpu-11bbc05900ef12da.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
