/root/repo/target/release/deps/prop-bd7166169df15ce9.d: crates/xbar/tests/prop.rs

/root/repo/target/release/deps/prop-bd7166169df15ce9: crates/xbar/tests/prop.rs

crates/xbar/tests/prop.rs:
