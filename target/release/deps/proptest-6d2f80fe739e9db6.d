/root/repo/target/release/deps/proptest-6d2f80fe739e9db6.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-6d2f80fe739e9db6: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
