/root/repo/target/release/deps/memsci_core-5143019e8d2d8ee5.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

/root/repo/target/release/deps/memsci_core-5143019e8d2d8ee5: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/config.rs:
crates/core/src/dispatch.rs:
crates/core/src/engine.rs:
crates/core/src/exact.rs:
crates/core/src/mapping.rs:
crates/core/src/multi.rs:
crates/core/src/overhead.rs:
