/root/repo/target/release/deps/memsci_numeric-403780bdb1357cbe.d: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs

/root/repo/target/release/deps/memsci_numeric-403780bdb1357cbe: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs

crates/numeric/src/lib.rs:
crates/numeric/src/align.rs:
crates/numeric/src/ancode.rs:
crates/numeric/src/bias.rs:
crates/numeric/src/bitslice.rs:
crates/numeric/src/float.rs:
crates/numeric/src/rounding.rs:
crates/numeric/src/running_sum.rs:
crates/numeric/src/wideint.rs:
