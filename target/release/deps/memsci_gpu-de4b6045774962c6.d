/root/repo/target/release/deps/memsci_gpu-de4b6045774962c6.d: crates/gpu/src/lib.rs

/root/repo/target/release/deps/libmemsci_gpu-de4b6045774962c6.rlib: crates/gpu/src/lib.rs

/root/repo/target/release/deps/libmemsci_gpu-de4b6045774962c6.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
