/root/repo/target/release/deps/precision-1dce6af80cf31f91.d: tests/precision.rs

/root/repo/target/release/deps/precision-1dce6af80cf31f91: tests/precision.rs

tests/precision.rs:
