/root/repo/target/release/deps/rand-81f18883a64f26cc.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-81f18883a64f26cc: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
