/root/repo/target/release/deps/memsci-628e2acc253baeae.d: src/lib.rs

/root/repo/target/release/deps/libmemsci-628e2acc253baeae.rlib: src/lib.rs

/root/repo/target/release/deps/libmemsci-628e2acc253baeae.rmeta: src/lib.rs

src/lib.rs:
