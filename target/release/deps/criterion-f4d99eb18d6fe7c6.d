/root/repo/target/release/deps/criterion-f4d99eb18d6fe7c6.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-f4d99eb18d6fe7c6: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
