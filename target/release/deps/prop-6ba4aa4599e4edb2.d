/root/repo/target/release/deps/prop-6ba4aa4599e4edb2.d: crates/sparse/tests/prop.rs

/root/repo/target/release/deps/prop-6ba4aa4599e4edb2: crates/sparse/tests/prop.rs

crates/sparse/tests/prop.rs:
