/root/repo/target/release/deps/proptest-0ae7a91dc49d5a55.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0ae7a91dc49d5a55.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0ae7a91dc49d5a55.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
