/root/repo/target/release/deps/memsci_exec-a3973e229c9434ca.d: crates/exec/src/lib.rs

/root/repo/target/release/deps/libmemsci_exec-a3973e229c9434ca.rlib: crates/exec/src/lib.rs

/root/repo/target/release/deps/libmemsci_exec-a3973e229c9434ca.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
