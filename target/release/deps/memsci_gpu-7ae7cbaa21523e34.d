/root/repo/target/release/deps/memsci_gpu-7ae7cbaa21523e34.d: crates/gpu/src/lib.rs

/root/repo/target/release/deps/libmemsci_gpu-7ae7cbaa21523e34.rlib: crates/gpu/src/lib.rs

/root/repo/target/release/deps/libmemsci_gpu-7ae7cbaa21523e34.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
