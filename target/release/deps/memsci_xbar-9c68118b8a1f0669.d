/root/repo/target/release/deps/memsci_xbar-9c68118b8a1f0669.d: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

/root/repo/target/release/deps/memsci_xbar-9c68118b8a1f0669: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

crates/xbar/src/lib.rs:
crates/xbar/src/adc.rs:
crates/xbar/src/cluster.rs:
crates/xbar/src/cost.rs:
crates/xbar/src/crossbar.rs:
crates/xbar/src/device.rs:
crates/xbar/src/schedule.rs:
