/root/repo/target/release/deps/telemetry_counters-a7d5a1c9def9bd43.d: crates/xbar/tests/telemetry_counters.rs

/root/repo/target/release/deps/telemetry_counters-a7d5a1c9def9bd43: crates/xbar/tests/telemetry_counters.rs

crates/xbar/tests/telemetry_counters.rs:
