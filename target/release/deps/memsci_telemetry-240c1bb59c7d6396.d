/root/repo/target/release/deps/memsci_telemetry-240c1bb59c7d6396.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libmemsci_telemetry-240c1bb59c7d6396.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libmemsci_telemetry-240c1bb59c7d6396.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/span.rs:
