/root/repo/target/release/deps/telemetry_verify-3de392d097624635.d: crates/telemetry/src/bin/telemetry-verify.rs

/root/repo/target/release/deps/telemetry_verify-3de392d097624635: crates/telemetry/src/bin/telemetry-verify.rs

crates/telemetry/src/bin/telemetry-verify.rs:
