/root/repo/target/release/deps/memsci_sparse-4669caca19bf9913.d: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

/root/repo/target/release/deps/memsci_sparse-4669caca19bf9913: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

crates/sparse/src/lib.rs:
crates/sparse/src/blocking.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/generate.rs:
crates/sparse/src/matrix_market.rs:
crates/sparse/src/stats.rs:
crates/sparse/src/suite.rs:
