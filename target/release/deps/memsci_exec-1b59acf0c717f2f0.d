/root/repo/target/release/deps/memsci_exec-1b59acf0c717f2f0.d: crates/exec/src/lib.rs

/root/repo/target/release/deps/memsci_exec-1b59acf0c717f2f0: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
