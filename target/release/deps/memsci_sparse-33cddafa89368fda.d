/root/repo/target/release/deps/memsci_sparse-33cddafa89368fda.d: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

/root/repo/target/release/deps/libmemsci_sparse-33cddafa89368fda.rlib: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

/root/repo/target/release/deps/libmemsci_sparse-33cddafa89368fda.rmeta: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

crates/sparse/src/lib.rs:
crates/sparse/src/blocking.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/generate.rs:
crates/sparse/src/matrix_market.rs:
crates/sparse/src/stats.rs:
crates/sparse/src/suite.rs:
