/root/repo/target/release/deps/system-55fdfac25a1e9539.d: tests/system.rs

/root/repo/target/release/deps/system-55fdfac25a1e9539: tests/system.rs

tests/system.rs:
