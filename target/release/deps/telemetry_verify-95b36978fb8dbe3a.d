/root/repo/target/release/deps/telemetry_verify-95b36978fb8dbe3a.d: crates/telemetry/src/bin/telemetry-verify.rs

/root/repo/target/release/deps/telemetry_verify-95b36978fb8dbe3a: crates/telemetry/src/bin/telemetry-verify.rs

crates/telemetry/src/bin/telemetry-verify.rs:
