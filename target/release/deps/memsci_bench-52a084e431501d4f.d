/root/repo/target/release/deps/memsci_bench-52a084e431501d4f.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libmemsci_bench-52a084e431501d4f.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libmemsci_bench-52a084e431501d4f.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/montecarlo.rs:
crates/bench/src/suite_run.rs:
crates/bench/src/tables.rs:
