/root/repo/target/release/deps/memsci_bench-50861c94475965ba.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/memsci_bench-50861c94475965ba: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/montecarlo.rs:
crates/bench/src/suite_run.rs:
crates/bench/src/tables.rs:
