/root/repo/target/release/deps/repro-31444aee3fe80b63.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-31444aee3fe80b63: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
