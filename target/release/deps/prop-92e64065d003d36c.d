/root/repo/target/release/deps/prop-92e64065d003d36c.d: crates/numeric/tests/prop.rs

/root/repo/target/release/deps/prop-92e64065d003d36c: crates/numeric/tests/prop.rs

crates/numeric/tests/prop.rs:
