/root/repo/target/release/deps/memsci_gpu-59e50b5b42569d5d.d: crates/gpu/src/lib.rs

/root/repo/target/release/deps/memsci_gpu-59e50b5b42569d5d: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
