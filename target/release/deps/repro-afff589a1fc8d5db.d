/root/repo/target/release/deps/repro-afff589a1fc8d5db.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-afff589a1fc8d5db: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
