/root/repo/target/release/deps/memsci_solvers-8dafdce567fd99ff.d: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

/root/repo/target/release/deps/libmemsci_solvers-8dafdce567fd99ff.rlib: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

/root/repo/target/release/deps/libmemsci_solvers-8dafdce567fd99ff.rmeta: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

crates/solvers/src/lib.rs:
crates/solvers/src/bicg.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/gmres.rs:
crates/solvers/src/jacobi.rs:
crates/solvers/src/pcg.rs:
crates/solvers/src/platform.rs:
crates/solvers/src/report.rs:
