/root/repo/target/release/deps/telemetry-ff484bf934c31ebd.d: tests/telemetry.rs

/root/repo/target/release/deps/telemetry-ff484bf934c31ebd: tests/telemetry.rs

tests/telemetry.rs:
