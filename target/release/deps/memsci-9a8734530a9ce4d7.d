/root/repo/target/release/deps/memsci-9a8734530a9ce4d7.d: src/lib.rs

/root/repo/target/release/deps/memsci-9a8734530a9ce4d7: src/lib.rs

src/lib.rs:
