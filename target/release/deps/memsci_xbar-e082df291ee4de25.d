/root/repo/target/release/deps/memsci_xbar-e082df291ee4de25.d: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

/root/repo/target/release/deps/libmemsci_xbar-e082df291ee4de25.rlib: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

/root/repo/target/release/deps/libmemsci_xbar-e082df291ee4de25.rmeta: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

crates/xbar/src/lib.rs:
crates/xbar/src/adc.rs:
crates/xbar/src/cluster.rs:
crates/xbar/src/cost.rs:
crates/xbar/src/crossbar.rs:
crates/xbar/src/device.rs:
crates/xbar/src/schedule.rs:
