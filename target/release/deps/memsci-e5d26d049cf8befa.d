/root/repo/target/release/deps/memsci-e5d26d049cf8befa.d: src/lib.rs

/root/repo/target/release/deps/libmemsci-e5d26d049cf8befa.rlib: src/lib.rs

/root/repo/target/release/deps/libmemsci-e5d26d049cf8befa.rmeta: src/lib.rs

src/lib.rs:
