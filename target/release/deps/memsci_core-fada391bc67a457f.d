/root/repo/target/release/deps/memsci_core-fada391bc67a457f.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

/root/repo/target/release/deps/libmemsci_core-fada391bc67a457f.rlib: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

/root/repo/target/release/deps/libmemsci_core-fada391bc67a457f.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/config.rs:
crates/core/src/dispatch.rs:
crates/core/src/engine.rs:
crates/core/src/exact.rs:
crates/core/src/mapping.rs:
crates/core/src/multi.rs:
crates/core/src/overhead.rs:
