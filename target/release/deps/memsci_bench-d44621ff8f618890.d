/root/repo/target/release/deps/memsci_bench-d44621ff8f618890.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libmemsci_bench-d44621ff8f618890.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libmemsci_bench-d44621ff8f618890.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/montecarlo.rs:
crates/bench/src/suite_run.rs:
crates/bench/src/tables.rs:
