/root/repo/target/release/deps/timing_exec-cd3bd465181661d0.d: crates/bench/src/bin/timing_exec.rs

/root/repo/target/release/deps/timing_exec-cd3bd465181661d0: crates/bench/src/bin/timing_exec.rs

crates/bench/src/bin/timing_exec.rs:
