/root/repo/target/release/deps/engine_calibration-a0bc353b037505fc.d: tests/engine_calibration.rs

/root/repo/target/release/deps/engine_calibration-a0bc353b037505fc: tests/engine_calibration.rs

tests/engine_calibration.rs:
