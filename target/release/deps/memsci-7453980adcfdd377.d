/root/repo/target/release/deps/memsci-7453980adcfdd377.d: src/lib.rs

/root/repo/target/release/deps/libmemsci-7453980adcfdd377.rlib: src/lib.rs

/root/repo/target/release/deps/libmemsci-7453980adcfdd377.rmeta: src/lib.rs

src/lib.rs:
