/root/repo/target/release/deps/memsci-376081b1de31ccbd.d: src/lib.rs

/root/repo/target/release/deps/libmemsci-376081b1de31ccbd.rlib: src/lib.rs

/root/repo/target/release/deps/libmemsci-376081b1de31ccbd.rmeta: src/lib.rs

src/lib.rs:
