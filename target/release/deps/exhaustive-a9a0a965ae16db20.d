/root/repo/target/release/deps/exhaustive-a9a0a965ae16db20.d: crates/numeric/tests/exhaustive.rs

/root/repo/target/release/deps/exhaustive-a9a0a965ae16db20: crates/numeric/tests/exhaustive.rs

crates/numeric/tests/exhaustive.rs:
