/root/repo/target/debug/libmemsci_exec.rlib: /root/repo/crates/exec/src/lib.rs
