/root/repo/target/debug/examples/circuit_simulation-34da36a440e8391a.d: examples/circuit_simulation.rs

/root/repo/target/debug/examples/circuit_simulation-34da36a440e8391a: examples/circuit_simulation.rs

examples/circuit_simulation.rs:
