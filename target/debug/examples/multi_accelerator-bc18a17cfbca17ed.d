/root/repo/target/debug/examples/multi_accelerator-bc18a17cfbca17ed.d: examples/multi_accelerator.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_accelerator-bc18a17cfbca17ed.rmeta: examples/multi_accelerator.rs Cargo.toml

examples/multi_accelerator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
