/root/repo/target/debug/examples/structural_analysis-dac73327d6b59d14.d: examples/structural_analysis.rs

/root/repo/target/debug/examples/structural_analysis-dac73327d6b59d14: examples/structural_analysis.rs

examples/structural_analysis.rs:
