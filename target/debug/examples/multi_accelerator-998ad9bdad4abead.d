/root/repo/target/debug/examples/multi_accelerator-998ad9bdad4abead.d: examples/multi_accelerator.rs

/root/repo/target/debug/examples/multi_accelerator-998ad9bdad4abead: examples/multi_accelerator.rs

examples/multi_accelerator.rs:
