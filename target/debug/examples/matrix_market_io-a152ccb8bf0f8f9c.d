/root/repo/target/debug/examples/matrix_market_io-a152ccb8bf0f8f9c.d: examples/matrix_market_io.rs

/root/repo/target/debug/examples/matrix_market_io-a152ccb8bf0f8f9c: examples/matrix_market_io.rs

examples/matrix_market_io.rs:
