/root/repo/target/debug/examples/matrix_market_io-aed7507281325c06.d: examples/matrix_market_io.rs

/root/repo/target/debug/examples/matrix_market_io-aed7507281325c06: examples/matrix_market_io.rs

examples/matrix_market_io.rs:
