/root/repo/target/debug/examples/structural_analysis-dedd2ec1f1a6fdfe.d: examples/structural_analysis.rs

/root/repo/target/debug/examples/structural_analysis-dedd2ec1f1a6fdfe: examples/structural_analysis.rs

examples/structural_analysis.rs:
