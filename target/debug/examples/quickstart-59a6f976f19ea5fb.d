/root/repo/target/debug/examples/quickstart-59a6f976f19ea5fb.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-59a6f976f19ea5fb.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
