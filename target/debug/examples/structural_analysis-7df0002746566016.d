/root/repo/target/debug/examples/structural_analysis-7df0002746566016.d: examples/structural_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libstructural_analysis-7df0002746566016.rmeta: examples/structural_analysis.rs Cargo.toml

examples/structural_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
