/root/repo/target/debug/examples/circuit_simulation-c4f61d8876ff2ba5.d: examples/circuit_simulation.rs

/root/repo/target/debug/examples/circuit_simulation-c4f61d8876ff2ba5: examples/circuit_simulation.rs

examples/circuit_simulation.rs:
