/root/repo/target/debug/examples/multi_accelerator-2fa6721796322917.d: examples/multi_accelerator.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_accelerator-2fa6721796322917.rmeta: examples/multi_accelerator.rs Cargo.toml

examples/multi_accelerator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
