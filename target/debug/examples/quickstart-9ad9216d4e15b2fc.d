/root/repo/target/debug/examples/quickstart-9ad9216d4e15b2fc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9ad9216d4e15b2fc: examples/quickstart.rs

examples/quickstart.rs:
