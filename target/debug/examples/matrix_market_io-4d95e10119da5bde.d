/root/repo/target/debug/examples/matrix_market_io-4d95e10119da5bde.d: examples/matrix_market_io.rs

/root/repo/target/debug/examples/matrix_market_io-4d95e10119da5bde: examples/matrix_market_io.rs

examples/matrix_market_io.rs:
