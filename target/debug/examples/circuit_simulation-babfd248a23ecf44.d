/root/repo/target/debug/examples/circuit_simulation-babfd248a23ecf44.d: examples/circuit_simulation.rs Cargo.toml

/root/repo/target/debug/examples/libcircuit_simulation-babfd248a23ecf44.rmeta: examples/circuit_simulation.rs Cargo.toml

examples/circuit_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
