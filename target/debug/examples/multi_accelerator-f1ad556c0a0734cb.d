/root/repo/target/debug/examples/multi_accelerator-f1ad556c0a0734cb.d: examples/multi_accelerator.rs

/root/repo/target/debug/examples/multi_accelerator-f1ad556c0a0734cb: examples/multi_accelerator.rs

examples/multi_accelerator.rs:
