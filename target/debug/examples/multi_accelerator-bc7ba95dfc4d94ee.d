/root/repo/target/debug/examples/multi_accelerator-bc7ba95dfc4d94ee.d: examples/multi_accelerator.rs

/root/repo/target/debug/examples/multi_accelerator-bc7ba95dfc4d94ee: examples/multi_accelerator.rs

examples/multi_accelerator.rs:
