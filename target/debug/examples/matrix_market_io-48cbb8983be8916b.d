/root/repo/target/debug/examples/matrix_market_io-48cbb8983be8916b.d: examples/matrix_market_io.rs Cargo.toml

/root/repo/target/debug/examples/libmatrix_market_io-48cbb8983be8916b.rmeta: examples/matrix_market_io.rs Cargo.toml

examples/matrix_market_io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
