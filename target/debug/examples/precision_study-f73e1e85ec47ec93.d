/root/repo/target/debug/examples/precision_study-f73e1e85ec47ec93.d: examples/precision_study.rs

/root/repo/target/debug/examples/precision_study-f73e1e85ec47ec93: examples/precision_study.rs

examples/precision_study.rs:
