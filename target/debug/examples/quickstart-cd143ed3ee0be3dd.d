/root/repo/target/debug/examples/quickstart-cd143ed3ee0be3dd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cd143ed3ee0be3dd: examples/quickstart.rs

examples/quickstart.rs:
