/root/repo/target/debug/examples/precision_study-80d7e22744b75619.d: examples/precision_study.rs Cargo.toml

/root/repo/target/debug/examples/libprecision_study-80d7e22744b75619.rmeta: examples/precision_study.rs Cargo.toml

examples/precision_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
