/root/repo/target/debug/examples/circuit_simulation-e05431bc464d2020.d: examples/circuit_simulation.rs

/root/repo/target/debug/examples/circuit_simulation-e05431bc464d2020: examples/circuit_simulation.rs

examples/circuit_simulation.rs:
