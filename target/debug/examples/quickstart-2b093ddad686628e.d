/root/repo/target/debug/examples/quickstart-2b093ddad686628e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2b093ddad686628e: examples/quickstart.rs

examples/quickstart.rs:
