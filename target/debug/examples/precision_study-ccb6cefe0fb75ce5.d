/root/repo/target/debug/examples/precision_study-ccb6cefe0fb75ce5.d: examples/precision_study.rs

/root/repo/target/debug/examples/precision_study-ccb6cefe0fb75ce5: examples/precision_study.rs

examples/precision_study.rs:
