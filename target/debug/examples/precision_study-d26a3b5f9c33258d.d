/root/repo/target/debug/examples/precision_study-d26a3b5f9c33258d.d: examples/precision_study.rs

/root/repo/target/debug/examples/precision_study-d26a3b5f9c33258d: examples/precision_study.rs

examples/precision_study.rs:
