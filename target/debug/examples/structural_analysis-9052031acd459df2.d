/root/repo/target/debug/examples/structural_analysis-9052031acd459df2.d: examples/structural_analysis.rs

/root/repo/target/debug/examples/structural_analysis-9052031acd459df2: examples/structural_analysis.rs

examples/structural_analysis.rs:
