/root/repo/target/debug/deps/precision-825ed0c8bb69e81b.d: tests/precision.rs

/root/repo/target/debug/deps/precision-825ed0c8bb69e81b: tests/precision.rs

tests/precision.rs:
