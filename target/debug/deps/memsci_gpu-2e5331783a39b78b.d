/root/repo/target/debug/deps/memsci_gpu-2e5331783a39b78b.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/memsci_gpu-2e5331783a39b78b: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
