/root/repo/target/debug/deps/memsci-03f9a8dd876cbb65.d: src/lib.rs

/root/repo/target/debug/deps/memsci-03f9a8dd876cbb65: src/lib.rs

src/lib.rs:
