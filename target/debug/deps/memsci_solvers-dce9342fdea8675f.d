/root/repo/target/debug/deps/memsci_solvers-dce9342fdea8675f.d: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

/root/repo/target/debug/deps/libmemsci_solvers-dce9342fdea8675f.rlib: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

/root/repo/target/debug/deps/libmemsci_solvers-dce9342fdea8675f.rmeta: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

crates/solvers/src/lib.rs:
crates/solvers/src/bicg.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/gmres.rs:
crates/solvers/src/jacobi.rs:
crates/solvers/src/pcg.rs:
crates/solvers/src/platform.rs:
crates/solvers/src/report.rs:
