/root/repo/target/debug/deps/memsci_xbar-635a3587853c28a5.d: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

/root/repo/target/debug/deps/memsci_xbar-635a3587853c28a5: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

crates/xbar/src/lib.rs:
crates/xbar/src/adc.rs:
crates/xbar/src/cluster.rs:
crates/xbar/src/cost.rs:
crates/xbar/src/crossbar.rs:
crates/xbar/src/device.rs:
crates/xbar/src/schedule.rs:
