/root/repo/target/debug/deps/memsci_bench-32de213e0fb0b938.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmemsci_bench-32de213e0fb0b938.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmemsci_bench-32de213e0fb0b938.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/montecarlo.rs:
crates/bench/src/suite_run.rs:
crates/bench/src/tables.rs:
