/root/repo/target/debug/deps/memsci_gpu-335eed86abbfb9be.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/memsci_gpu-335eed86abbfb9be: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
