/root/repo/target/debug/deps/system-44d9e874688fbc4f.d: tests/system.rs

/root/repo/target/debug/deps/system-44d9e874688fbc4f: tests/system.rs

tests/system.rs:
