/root/repo/target/debug/deps/solvers-804564e11171db3b.d: crates/bench/benches/solvers.rs Cargo.toml

/root/repo/target/debug/deps/libsolvers-804564e11171db3b.rmeta: crates/bench/benches/solvers.rs Cargo.toml

crates/bench/benches/solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
