/root/repo/target/debug/deps/memsci_bench-bc14752ce246de7b.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmemsci_bench-bc14752ce246de7b.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmemsci_bench-bc14752ce246de7b.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/montecarlo.rs:
crates/bench/src/suite_run.rs:
crates/bench/src/tables.rs:
