/root/repo/target/debug/deps/prop-7451570149ab107d.d: crates/numeric/tests/prop.rs

/root/repo/target/debug/deps/prop-7451570149ab107d: crates/numeric/tests/prop.rs

crates/numeric/tests/prop.rs:
