/root/repo/target/debug/deps/solvers-5dd078f3a8e821ff.d: crates/bench/benches/solvers.rs Cargo.toml

/root/repo/target/debug/deps/libsolvers-5dd078f3a8e821ff.rmeta: crates/bench/benches/solvers.rs Cargo.toml

crates/bench/benches/solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
