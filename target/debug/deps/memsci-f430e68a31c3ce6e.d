/root/repo/target/debug/deps/memsci-f430e68a31c3ce6e.d: src/lib.rs

/root/repo/target/debug/deps/libmemsci-f430e68a31c3ce6e.rlib: src/lib.rs

/root/repo/target/debug/deps/libmemsci-f430e68a31c3ce6e.rmeta: src/lib.rs

src/lib.rs:
