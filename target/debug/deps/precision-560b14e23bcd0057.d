/root/repo/target/debug/deps/precision-560b14e23bcd0057.d: tests/precision.rs

/root/repo/target/debug/deps/precision-560b14e23bcd0057: tests/precision.rs

tests/precision.rs:
