/root/repo/target/debug/deps/telemetry_counters-69fc7d6c69b084bd.d: crates/xbar/tests/telemetry_counters.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_counters-69fc7d6c69b084bd.rmeta: crates/xbar/tests/telemetry_counters.rs Cargo.toml

crates/xbar/tests/telemetry_counters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
