/root/repo/target/debug/deps/cluster-86936a3f83eaa1ba.d: crates/bench/benches/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-86936a3f83eaa1ba.rmeta: crates/bench/benches/cluster.rs Cargo.toml

crates/bench/benches/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
