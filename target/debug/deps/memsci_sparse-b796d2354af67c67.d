/root/repo/target/debug/deps/memsci_sparse-b796d2354af67c67.d: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_sparse-b796d2354af67c67.rmeta: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/blocking.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/generate.rs:
crates/sparse/src/matrix_market.rs:
crates/sparse/src/stats.rs:
crates/sparse/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
