/root/repo/target/debug/deps/memsci_telemetry-a5481eaddd97cc1b.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/memsci_telemetry-a5481eaddd97cc1b: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/span.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/telemetry
