/root/repo/target/debug/deps/memsci_xbar-4a0b2e272062d293.d: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

/root/repo/target/debug/deps/libmemsci_xbar-4a0b2e272062d293.rlib: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

/root/repo/target/debug/deps/libmemsci_xbar-4a0b2e272062d293.rmeta: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

crates/xbar/src/lib.rs:
crates/xbar/src/adc.rs:
crates/xbar/src/cluster.rs:
crates/xbar/src/cost.rs:
crates/xbar/src/crossbar.rs:
crates/xbar/src/device.rs:
crates/xbar/src/schedule.rs:
