/root/repo/target/debug/deps/prop-fbd32e0d326e9ccc.d: crates/numeric/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-fbd32e0d326e9ccc.rmeta: crates/numeric/tests/prop.rs Cargo.toml

crates/numeric/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
