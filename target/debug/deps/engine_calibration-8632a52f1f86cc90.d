/root/repo/target/debug/deps/engine_calibration-8632a52f1f86cc90.d: tests/engine_calibration.rs

/root/repo/target/debug/deps/engine_calibration-8632a52f1f86cc90: tests/engine_calibration.rs

tests/engine_calibration.rs:
