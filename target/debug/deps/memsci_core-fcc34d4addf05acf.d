/root/repo/target/debug/deps/memsci_core-fcc34d4addf05acf.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_core-fcc34d4addf05acf.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/config.rs:
crates/core/src/dispatch.rs:
crates/core/src/engine.rs:
crates/core/src/exact.rs:
crates/core/src/mapping.rs:
crates/core/src/multi.rs:
crates/core/src/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
