/root/repo/target/debug/deps/memsci_core-128882bdb94817d5.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

/root/repo/target/debug/deps/libmemsci_core-128882bdb94817d5.rlib: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

/root/repo/target/debug/deps/libmemsci_core-128882bdb94817d5.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/config.rs:
crates/core/src/dispatch.rs:
crates/core/src/engine.rs:
crates/core/src/exact.rs:
crates/core/src/mapping.rs:
crates/core/src/multi.rs:
crates/core/src/overhead.rs:
