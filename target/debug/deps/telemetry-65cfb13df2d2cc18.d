/root/repo/target/debug/deps/telemetry-65cfb13df2d2cc18.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-65cfb13df2d2cc18: tests/telemetry.rs

tests/telemetry.rs:
