/root/repo/target/debug/deps/memsci_telemetry-64d81d8a2aca584f.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_telemetry-64d81d8a2aca584f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
