/root/repo/target/debug/deps/memsci_solvers-8aaa5241e942845e.d: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_solvers-8aaa5241e942845e.rmeta: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs Cargo.toml

crates/solvers/src/lib.rs:
crates/solvers/src/bicg.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/gmres.rs:
crates/solvers/src/jacobi.rs:
crates/solvers/src/pcg.rs:
crates/solvers/src/platform.rs:
crates/solvers/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
