/root/repo/target/debug/deps/prop-5bde2566e1dac53e.d: crates/sparse/tests/prop.rs

/root/repo/target/debug/deps/prop-5bde2566e1dac53e: crates/sparse/tests/prop.rs

crates/sparse/tests/prop.rs:
