/root/repo/target/debug/deps/prop-9483b05d168958f4.d: crates/xbar/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-9483b05d168958f4.rmeta: crates/xbar/tests/prop.rs Cargo.toml

crates/xbar/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
