/root/repo/target/debug/deps/memsci_numeric-4ee8a83722426334.d: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs

/root/repo/target/debug/deps/memsci_numeric-4ee8a83722426334: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs

crates/numeric/src/lib.rs:
crates/numeric/src/align.rs:
crates/numeric/src/ancode.rs:
crates/numeric/src/bias.rs:
crates/numeric/src/bitslice.rs:
crates/numeric/src/float.rs:
crates/numeric/src/rounding.rs:
crates/numeric/src/running_sum.rs:
crates/numeric/src/wideint.rs:
