/root/repo/target/debug/deps/memsci_gpu-34c87b91e74bf341.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libmemsci_gpu-34c87b91e74bf341.rlib: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libmemsci_gpu-34c87b91e74bf341.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
