/root/repo/target/debug/deps/telemetry_counters-2f9c704ef4eadf33.d: crates/xbar/tests/telemetry_counters.rs

/root/repo/target/debug/deps/telemetry_counters-2f9c704ef4eadf33: crates/xbar/tests/telemetry_counters.rs

crates/xbar/tests/telemetry_counters.rs:
