/root/repo/target/debug/deps/memsci_xbar-655f49463b46a076.d: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_xbar-655f49463b46a076.rmeta: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs Cargo.toml

crates/xbar/src/lib.rs:
crates/xbar/src/adc.rs:
crates/xbar/src/cluster.rs:
crates/xbar/src/cost.rs:
crates/xbar/src/crossbar.rs:
crates/xbar/src/device.rs:
crates/xbar/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
