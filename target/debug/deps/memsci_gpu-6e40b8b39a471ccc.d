/root/repo/target/debug/deps/memsci_gpu-6e40b8b39a471ccc.d: crates/gpu/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_gpu-6e40b8b39a471ccc.rmeta: crates/gpu/src/lib.rs Cargo.toml

crates/gpu/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
