/root/repo/target/debug/deps/engine_calibration-75b17eb2322f6aca.d: tests/engine_calibration.rs

/root/repo/target/debug/deps/engine_calibration-75b17eb2322f6aca: tests/engine_calibration.rs

tests/engine_calibration.rs:
