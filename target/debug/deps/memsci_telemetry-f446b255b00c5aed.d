/root/repo/target/debug/deps/memsci_telemetry-f446b255b00c5aed.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmemsci_telemetry-f446b255b00c5aed.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libmemsci_telemetry-f446b255b00c5aed.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/span.rs:
