/root/repo/target/debug/deps/memsci_gpu-f3f1e8cea83a50ec.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libmemsci_gpu-f3f1e8cea83a50ec.rlib: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libmemsci_gpu-f3f1e8cea83a50ec.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
