/root/repo/target/debug/deps/repro-0a16aba2d3cc9dbe.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-0a16aba2d3cc9dbe: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
