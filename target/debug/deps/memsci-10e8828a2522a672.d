/root/repo/target/debug/deps/memsci-10e8828a2522a672.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci-10e8828a2522a672.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
