/root/repo/target/debug/deps/prop-cfa734b94da1feea.d: crates/numeric/tests/prop.rs

/root/repo/target/debug/deps/prop-cfa734b94da1feea: crates/numeric/tests/prop.rs

crates/numeric/tests/prop.rs:
