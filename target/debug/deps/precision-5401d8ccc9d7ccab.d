/root/repo/target/debug/deps/precision-5401d8ccc9d7ccab.d: tests/precision.rs Cargo.toml

/root/repo/target/debug/deps/libprecision-5401d8ccc9d7ccab.rmeta: tests/precision.rs Cargo.toml

tests/precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
