/root/repo/target/debug/deps/memsci-f63747aae3fd7e05.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci-f63747aae3fd7e05.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
