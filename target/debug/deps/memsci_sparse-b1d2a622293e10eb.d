/root/repo/target/debug/deps/memsci_sparse-b1d2a622293e10eb.d: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

/root/repo/target/debug/deps/libmemsci_sparse-b1d2a622293e10eb.rlib: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

/root/repo/target/debug/deps/libmemsci_sparse-b1d2a622293e10eb.rmeta: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

crates/sparse/src/lib.rs:
crates/sparse/src/blocking.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/generate.rs:
crates/sparse/src/matrix_market.rs:
crates/sparse/src/stats.rs:
crates/sparse/src/suite.rs:
