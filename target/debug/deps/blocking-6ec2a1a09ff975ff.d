/root/repo/target/debug/deps/blocking-6ec2a1a09ff975ff.d: crates/bench/benches/blocking.rs Cargo.toml

/root/repo/target/debug/deps/libblocking-6ec2a1a09ff975ff.rmeta: crates/bench/benches/blocking.rs Cargo.toml

crates/bench/benches/blocking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
