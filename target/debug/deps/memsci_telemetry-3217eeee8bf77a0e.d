/root/repo/target/debug/deps/memsci_telemetry-3217eeee8bf77a0e.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_telemetry-3217eeee8bf77a0e.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/json.rs crates/telemetry/src/manifest.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/telemetry
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
