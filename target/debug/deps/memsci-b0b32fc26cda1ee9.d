/root/repo/target/debug/deps/memsci-b0b32fc26cda1ee9.d: src/lib.rs

/root/repo/target/debug/deps/libmemsci-b0b32fc26cda1ee9.rlib: src/lib.rs

/root/repo/target/debug/deps/libmemsci-b0b32fc26cda1ee9.rmeta: src/lib.rs

src/lib.rs:
