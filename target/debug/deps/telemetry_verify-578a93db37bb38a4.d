/root/repo/target/debug/deps/telemetry_verify-578a93db37bb38a4.d: crates/telemetry/src/bin/telemetry-verify.rs

/root/repo/target/debug/deps/telemetry_verify-578a93db37bb38a4: crates/telemetry/src/bin/telemetry-verify.rs

crates/telemetry/src/bin/telemetry-verify.rs:
