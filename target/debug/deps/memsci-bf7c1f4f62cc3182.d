/root/repo/target/debug/deps/memsci-bf7c1f4f62cc3182.d: src/lib.rs

/root/repo/target/debug/deps/libmemsci-bf7c1f4f62cc3182.rlib: src/lib.rs

/root/repo/target/debug/deps/libmemsci-bf7c1f4f62cc3182.rmeta: src/lib.rs

src/lib.rs:
