/root/repo/target/debug/deps/prop-af7bfb5681cf50f3.d: crates/numeric/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-af7bfb5681cf50f3.rmeta: crates/numeric/tests/prop.rs Cargo.toml

crates/numeric/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
