/root/repo/target/debug/deps/memsci_gpu-333ee7e0a0fb9f1e.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/memsci_gpu-333ee7e0a0fb9f1e: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
