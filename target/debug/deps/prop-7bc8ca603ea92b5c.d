/root/repo/target/debug/deps/prop-7bc8ca603ea92b5c.d: crates/xbar/tests/prop.rs

/root/repo/target/debug/deps/prop-7bc8ca603ea92b5c: crates/xbar/tests/prop.rs

crates/xbar/tests/prop.rs:
