/root/repo/target/debug/deps/memsci_exec-2a25da69b63498bc.d: crates/exec/src/lib.rs

/root/repo/target/debug/deps/memsci_exec-2a25da69b63498bc: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
