/root/repo/target/debug/deps/repro-32ce7e14c25b62d6.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-32ce7e14c25b62d6: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
