/root/repo/target/debug/deps/engine_calibration-b41a53a14ff08856.d: tests/engine_calibration.rs

/root/repo/target/debug/deps/engine_calibration-b41a53a14ff08856: tests/engine_calibration.rs

tests/engine_calibration.rs:
