/root/repo/target/debug/deps/system-a80875b1851400d0.d: tests/system.rs Cargo.toml

/root/repo/target/debug/deps/libsystem-a80875b1851400d0.rmeta: tests/system.rs Cargo.toml

tests/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
