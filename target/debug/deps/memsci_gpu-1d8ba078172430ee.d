/root/repo/target/debug/deps/memsci_gpu-1d8ba078172430ee.d: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libmemsci_gpu-1d8ba078172430ee.rlib: crates/gpu/src/lib.rs

/root/repo/target/debug/deps/libmemsci_gpu-1d8ba078172430ee.rmeta: crates/gpu/src/lib.rs

crates/gpu/src/lib.rs:
