/root/repo/target/debug/deps/telemetry_verify-eee92953a829e992.d: crates/telemetry/src/bin/telemetry-verify.rs

/root/repo/target/debug/deps/telemetry_verify-eee92953a829e992: crates/telemetry/src/bin/telemetry-verify.rs

crates/telemetry/src/bin/telemetry-verify.rs:
