/root/repo/target/debug/deps/prop-e6958c876cf9d7e4.d: crates/xbar/tests/prop.rs

/root/repo/target/debug/deps/prop-e6958c876cf9d7e4: crates/xbar/tests/prop.rs

crates/xbar/tests/prop.rs:
