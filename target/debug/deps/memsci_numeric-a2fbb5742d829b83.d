/root/repo/target/debug/deps/memsci_numeric-a2fbb5742d829b83.d: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs

/root/repo/target/debug/deps/libmemsci_numeric-a2fbb5742d829b83.rlib: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs

/root/repo/target/debug/deps/libmemsci_numeric-a2fbb5742d829b83.rmeta: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs

crates/numeric/src/lib.rs:
crates/numeric/src/align.rs:
crates/numeric/src/ancode.rs:
crates/numeric/src/bias.rs:
crates/numeric/src/bitslice.rs:
crates/numeric/src/float.rs:
crates/numeric/src/rounding.rs:
crates/numeric/src/running_sum.rs:
crates/numeric/src/wideint.rs:
