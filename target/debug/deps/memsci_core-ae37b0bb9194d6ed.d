/root/repo/target/debug/deps/memsci_core-ae37b0bb9194d6ed.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

/root/repo/target/debug/deps/memsci_core-ae37b0bb9194d6ed: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/exact.rs crates/core/src/mapping.rs crates/core/src/multi.rs crates/core/src/overhead.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/config.rs:
crates/core/src/dispatch.rs:
crates/core/src/engine.rs:
crates/core/src/exact.rs:
crates/core/src/mapping.rs:
crates/core/src/multi.rs:
crates/core/src/overhead.rs:
