/root/repo/target/debug/deps/prop-003b015599934c4f.d: crates/sparse/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-003b015599934c4f.rmeta: crates/sparse/tests/prop.rs Cargo.toml

crates/sparse/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
