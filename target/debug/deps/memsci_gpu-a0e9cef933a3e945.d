/root/repo/target/debug/deps/memsci_gpu-a0e9cef933a3e945.d: crates/gpu/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_gpu-a0e9cef933a3e945.rmeta: crates/gpu/src/lib.rs Cargo.toml

crates/gpu/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
