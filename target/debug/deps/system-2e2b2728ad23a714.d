/root/repo/target/debug/deps/system-2e2b2728ad23a714.d: tests/system.rs

/root/repo/target/debug/deps/system-2e2b2728ad23a714: tests/system.rs

tests/system.rs:
