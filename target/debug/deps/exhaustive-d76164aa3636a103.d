/root/repo/target/debug/deps/exhaustive-d76164aa3636a103.d: crates/numeric/tests/exhaustive.rs Cargo.toml

/root/repo/target/debug/deps/libexhaustive-d76164aa3636a103.rmeta: crates/numeric/tests/exhaustive.rs Cargo.toml

crates/numeric/tests/exhaustive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
