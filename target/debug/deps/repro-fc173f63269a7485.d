/root/repo/target/debug/deps/repro-fc173f63269a7485.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-fc173f63269a7485: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
