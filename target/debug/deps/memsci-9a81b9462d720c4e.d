/root/repo/target/debug/deps/memsci-9a81b9462d720c4e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci-9a81b9462d720c4e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
