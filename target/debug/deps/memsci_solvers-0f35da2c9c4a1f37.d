/root/repo/target/debug/deps/memsci_solvers-0f35da2c9c4a1f37.d: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

/root/repo/target/debug/deps/memsci_solvers-0f35da2c9c4a1f37: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

crates/solvers/src/lib.rs:
crates/solvers/src/bicg.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/gmres.rs:
crates/solvers/src/jacobi.rs:
crates/solvers/src/pcg.rs:
crates/solvers/src/platform.rs:
crates/solvers/src/report.rs:
