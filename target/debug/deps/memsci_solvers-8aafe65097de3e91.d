/root/repo/target/debug/deps/memsci_solvers-8aafe65097de3e91.d: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

/root/repo/target/debug/deps/libmemsci_solvers-8aafe65097de3e91.rlib: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

/root/repo/target/debug/deps/libmemsci_solvers-8aafe65097de3e91.rmeta: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs

crates/solvers/src/lib.rs:
crates/solvers/src/bicg.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/gmres.rs:
crates/solvers/src/jacobi.rs:
crates/solvers/src/pcg.rs:
crates/solvers/src/platform.rs:
crates/solvers/src/report.rs:
