/root/repo/target/debug/deps/memsci_exec-7a999813189005b4.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_exec-7a999813189005b4.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
