/root/repo/target/debug/deps/repro-a19c23231b9ca80c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-a19c23231b9ca80c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
