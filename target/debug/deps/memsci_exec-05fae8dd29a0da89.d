/root/repo/target/debug/deps/memsci_exec-05fae8dd29a0da89.d: crates/exec/src/lib.rs

/root/repo/target/debug/deps/libmemsci_exec-05fae8dd29a0da89.rlib: crates/exec/src/lib.rs

/root/repo/target/debug/deps/libmemsci_exec-05fae8dd29a0da89.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
