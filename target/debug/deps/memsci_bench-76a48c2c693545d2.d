/root/repo/target/debug/deps/memsci_bench-76a48c2c693545d2.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmemsci_bench-76a48c2c693545d2.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmemsci_bench-76a48c2c693545d2.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/montecarlo.rs:
crates/bench/src/suite_run.rs:
crates/bench/src/tables.rs:
