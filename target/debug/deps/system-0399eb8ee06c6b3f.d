/root/repo/target/debug/deps/system-0399eb8ee06c6b3f.d: tests/system.rs

/root/repo/target/debug/deps/system-0399eb8ee06c6b3f: tests/system.rs

tests/system.rs:
