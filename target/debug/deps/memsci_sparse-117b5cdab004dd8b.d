/root/repo/target/debug/deps/memsci_sparse-117b5cdab004dd8b.d: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

/root/repo/target/debug/deps/memsci_sparse-117b5cdab004dd8b: crates/sparse/src/lib.rs crates/sparse/src/blocking.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/generate.rs crates/sparse/src/matrix_market.rs crates/sparse/src/stats.rs crates/sparse/src/suite.rs

crates/sparse/src/lib.rs:
crates/sparse/src/blocking.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/generate.rs:
crates/sparse/src/matrix_market.rs:
crates/sparse/src/stats.rs:
crates/sparse/src/suite.rs:
