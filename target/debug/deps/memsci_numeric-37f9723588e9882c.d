/root/repo/target/debug/deps/memsci_numeric-37f9723588e9882c.d: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs

/root/repo/target/debug/deps/memsci_numeric-37f9723588e9882c: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs

crates/numeric/src/lib.rs:
crates/numeric/src/align.rs:
crates/numeric/src/ancode.rs:
crates/numeric/src/bias.rs:
crates/numeric/src/bitslice.rs:
crates/numeric/src/float.rs:
crates/numeric/src/rounding.rs:
crates/numeric/src/running_sum.rs:
crates/numeric/src/wideint.rs:
