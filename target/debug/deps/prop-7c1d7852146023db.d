/root/repo/target/debug/deps/prop-7c1d7852146023db.d: crates/sparse/tests/prop.rs

/root/repo/target/debug/deps/prop-7c1d7852146023db: crates/sparse/tests/prop.rs

crates/sparse/tests/prop.rs:
