/root/repo/target/debug/deps/memsci-af0f78948da966be.d: src/lib.rs

/root/repo/target/debug/deps/libmemsci-af0f78948da966be.rlib: src/lib.rs

/root/repo/target/debug/deps/libmemsci-af0f78948da966be.rmeta: src/lib.rs

src/lib.rs:
