/root/repo/target/debug/deps/memsci-5d100aaa7dfe2c18.d: src/lib.rs

/root/repo/target/debug/deps/memsci-5d100aaa7dfe2c18: src/lib.rs

src/lib.rs:
