/root/repo/target/debug/deps/telemetry-0490a64d66e8122c.d: tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-0490a64d66e8122c.rmeta: tests/telemetry.rs Cargo.toml

tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
