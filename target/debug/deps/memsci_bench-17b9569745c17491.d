/root/repo/target/debug/deps/memsci_bench-17b9569745c17491.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_bench-17b9569745c17491.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/montecarlo.rs:
crates/bench/src/suite_run.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
