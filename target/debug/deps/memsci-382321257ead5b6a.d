/root/repo/target/debug/deps/memsci-382321257ead5b6a.d: src/lib.rs

/root/repo/target/debug/deps/memsci-382321257ead5b6a: src/lib.rs

src/lib.rs:
