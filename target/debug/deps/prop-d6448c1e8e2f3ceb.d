/root/repo/target/debug/deps/prop-d6448c1e8e2f3ceb.d: crates/sparse/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-d6448c1e8e2f3ceb.rmeta: crates/sparse/tests/prop.rs Cargo.toml

crates/sparse/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
