/root/repo/target/debug/deps/cluster-0f5d5b074cab8fe3.d: crates/bench/benches/cluster.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-0f5d5b074cab8fe3.rmeta: crates/bench/benches/cluster.rs Cargo.toml

crates/bench/benches/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
