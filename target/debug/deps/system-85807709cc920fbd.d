/root/repo/target/debug/deps/system-85807709cc920fbd.d: tests/system.rs Cargo.toml

/root/repo/target/debug/deps/libsystem-85807709cc920fbd.rmeta: tests/system.rs Cargo.toml

tests/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
