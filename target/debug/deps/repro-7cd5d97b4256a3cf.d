/root/repo/target/debug/deps/repro-7cd5d97b4256a3cf.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-7cd5d97b4256a3cf.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
