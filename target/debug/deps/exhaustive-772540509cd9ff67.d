/root/repo/target/debug/deps/exhaustive-772540509cd9ff67.d: crates/numeric/tests/exhaustive.rs Cargo.toml

/root/repo/target/debug/deps/libexhaustive-772540509cd9ff67.rmeta: crates/numeric/tests/exhaustive.rs Cargo.toml

crates/numeric/tests/exhaustive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
