/root/repo/target/debug/deps/memsci_xbar-6974cd9ed0a62a8c.d: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_xbar-6974cd9ed0a62a8c.rmeta: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs Cargo.toml

crates/xbar/src/lib.rs:
crates/xbar/src/adc.rs:
crates/xbar/src/cluster.rs:
crates/xbar/src/cost.rs:
crates/xbar/src/crossbar.rs:
crates/xbar/src/device.rs:
crates/xbar/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
