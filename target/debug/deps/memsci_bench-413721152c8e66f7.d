/root/repo/target/debug/deps/memsci_bench-413721152c8e66f7.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmemsci_bench-413721152c8e66f7.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libmemsci_bench-413721152c8e66f7.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/montecarlo.rs:
crates/bench/src/suite_run.rs:
crates/bench/src/tables.rs:
