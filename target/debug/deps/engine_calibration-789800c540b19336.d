/root/repo/target/debug/deps/engine_calibration-789800c540b19336.d: tests/engine_calibration.rs Cargo.toml

/root/repo/target/debug/deps/libengine_calibration-789800c540b19336.rmeta: tests/engine_calibration.rs Cargo.toml

tests/engine_calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
