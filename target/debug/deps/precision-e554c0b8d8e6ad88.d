/root/repo/target/debug/deps/precision-e554c0b8d8e6ad88.d: tests/precision.rs Cargo.toml

/root/repo/target/debug/deps/libprecision-e554c0b8d8e6ad88.rmeta: tests/precision.rs Cargo.toml

tests/precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
