/root/repo/target/debug/deps/memsci_numeric-a6d87dd9bed2f221.d: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_numeric-a6d87dd9bed2f221.rmeta: crates/numeric/src/lib.rs crates/numeric/src/align.rs crates/numeric/src/ancode.rs crates/numeric/src/bias.rs crates/numeric/src/bitslice.rs crates/numeric/src/float.rs crates/numeric/src/rounding.rs crates/numeric/src/running_sum.rs crates/numeric/src/wideint.rs Cargo.toml

crates/numeric/src/lib.rs:
crates/numeric/src/align.rs:
crates/numeric/src/ancode.rs:
crates/numeric/src/bias.rs:
crates/numeric/src/bitslice.rs:
crates/numeric/src/float.rs:
crates/numeric/src/rounding.rs:
crates/numeric/src/running_sum.rs:
crates/numeric/src/wideint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
