/root/repo/target/debug/deps/memsci-c353efd01db4ab6b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci-c353efd01db4ab6b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
