/root/repo/target/debug/deps/kernels-ecb9b33754a67d90.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-ecb9b33754a67d90.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
