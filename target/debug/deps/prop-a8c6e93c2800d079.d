/root/repo/target/debug/deps/prop-a8c6e93c2800d079.d: crates/xbar/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-a8c6e93c2800d079.rmeta: crates/xbar/tests/prop.rs Cargo.toml

crates/xbar/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
