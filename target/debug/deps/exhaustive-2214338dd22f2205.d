/root/repo/target/debug/deps/exhaustive-2214338dd22f2205.d: crates/numeric/tests/exhaustive.rs

/root/repo/target/debug/deps/exhaustive-2214338dd22f2205: crates/numeric/tests/exhaustive.rs

crates/numeric/tests/exhaustive.rs:
