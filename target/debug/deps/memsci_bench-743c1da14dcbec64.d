/root/repo/target/debug/deps/memsci_bench-743c1da14dcbec64.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/memsci_bench-743c1da14dcbec64: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/montecarlo.rs crates/bench/src/suite_run.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/montecarlo.rs:
crates/bench/src/suite_run.rs:
crates/bench/src/tables.rs:
