/root/repo/target/debug/deps/telemetry_verify-b95b60edbb40e58c.d: crates/telemetry/src/bin/telemetry-verify.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_verify-b95b60edbb40e58c.rmeta: crates/telemetry/src/bin/telemetry-verify.rs Cargo.toml

crates/telemetry/src/bin/telemetry-verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
