/root/repo/target/debug/deps/prop-15db0471f88bd7c7.d: crates/sparse/tests/prop.rs

/root/repo/target/debug/deps/prop-15db0471f88bd7c7: crates/sparse/tests/prop.rs

crates/sparse/tests/prop.rs:
