/root/repo/target/debug/deps/memsci_xbar-a1ea8e6bf4afc7d0.d: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

/root/repo/target/debug/deps/libmemsci_xbar-a1ea8e6bf4afc7d0.rlib: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

/root/repo/target/debug/deps/libmemsci_xbar-a1ea8e6bf4afc7d0.rmeta: crates/xbar/src/lib.rs crates/xbar/src/adc.rs crates/xbar/src/cluster.rs crates/xbar/src/cost.rs crates/xbar/src/crossbar.rs crates/xbar/src/device.rs crates/xbar/src/schedule.rs

crates/xbar/src/lib.rs:
crates/xbar/src/adc.rs:
crates/xbar/src/cluster.rs:
crates/xbar/src/cost.rs:
crates/xbar/src/crossbar.rs:
crates/xbar/src/device.rs:
crates/xbar/src/schedule.rs:
