/root/repo/target/debug/deps/memsci_solvers-3c81ffd524a1f6b1.d: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_solvers-3c81ffd524a1f6b1.rmeta: crates/solvers/src/lib.rs crates/solvers/src/bicg.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/gmres.rs crates/solvers/src/jacobi.rs crates/solvers/src/pcg.rs crates/solvers/src/platform.rs crates/solvers/src/report.rs Cargo.toml

crates/solvers/src/lib.rs:
crates/solvers/src/bicg.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/gmres.rs:
crates/solvers/src/jacobi.rs:
crates/solvers/src/pcg.rs:
crates/solvers/src/platform.rs:
crates/solvers/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
