/root/repo/target/debug/deps/exhaustive-c68a87f076bda01d.d: crates/numeric/tests/exhaustive.rs

/root/repo/target/debug/deps/exhaustive-c68a87f076bda01d: crates/numeric/tests/exhaustive.rs

crates/numeric/tests/exhaustive.rs:
