/root/repo/target/debug/deps/memsci_exec-3127086b1fe4bafd.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemsci_exec-3127086b1fe4bafd.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
