/root/repo/target/debug/deps/precision-dae25c8c5dfc4863.d: tests/precision.rs

/root/repo/target/debug/deps/precision-dae25c8c5dfc4863: tests/precision.rs

tests/precision.rs:
