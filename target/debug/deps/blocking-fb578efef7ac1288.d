/root/repo/target/debug/deps/blocking-fb578efef7ac1288.d: crates/bench/benches/blocking.rs Cargo.toml

/root/repo/target/debug/deps/libblocking-fb578efef7ac1288.rmeta: crates/bench/benches/blocking.rs Cargo.toml

crates/bench/benches/blocking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
